//! Per-SMX simulation shards for the deterministic parallel backend.
//!
//! A [`SmxShard`] bundles one [`Smx`] with everything its tick mutates
//! privately: the L1 cache (tag state only — L2/DRAM stay global), the
//! coalescing scratch buffers, and the recorded effect arenas. The
//! shard is `Send`, so [`SimBackend::Par`](crate::SimBackend::Par) can
//! move it onto a worker pool and run several of its cycles at once.
//!
//! The protocol is a two-phase conservative *lookahead window*
//! (DESIGN.md §12):
//!
//! 1. **Local phase** (worker thread, [`SmxShard::local_tick_span`]):
//!    starting from an anchor cycle, run every anchor tick of this SMX
//!    up to a caller-proven safe horizon `H`. Each tick drains the local
//!    wakeup wheel, runs the issue loop, and appends one [`TickRec`] to
//!    the `ticks` arena; per-round effects that touch global state are
//!    recorded as [`TickOp`]s. Rounds whose warp tail is fully
//!    predictable from shard state (everything except warp starts,
//!    finishes, and final rounds) *apply* the tail locally — including
//!    the next wheel wakeup and the anchor dedupe — so the span can keep
//!    ticking past them; a miss round's unknown completion time is stood
//!    in for by [`SENTINEL`] until the merge computes the real one.
//! 2. **Merge phase** (main thread, `Simulation::merge_recorded_tick`):
//!    each recorded tick is replayed when its global anchor event pops,
//!    i.e. at the *exact* queue position the sequential backend would
//!    have handled it, and its recorded ops/pushes are applied in the
//!    order the sequential handler would have produced them.
//!
//! Because every global mutation is replayed in global pop order and
//! each record carries everything the merge needs, the merged run is
//! byte-identical to the sequential one regardless of worker
//! interleaving, worker count, or window width.

use dynapar_engine::snap::{ByteReader, ByteWriter, SnapError};
use dynapar_engine::Cycle;

use crate::config::GpuConfig;
use crate::ids::SmxId;
use crate::kernel::SpecTable;
use crate::mem::{coalesce_lines_parts, SmxL1};
use crate::smx::Smx;

/// Placeholder completion time for a miss round's in-flight memory
/// entry: the real time needs the global L2/DRAM state, so the local
/// tail pushes this and the merge overwrites it with the `service_read`
/// result. Any tick whose tail would *consume* a sentinel (final-round
/// drain or MLP-window overflow) defers to the merge instead, so a
/// sentinel is never read as a time.
pub(crate) const SENTINEL: Cycle = Cycle(u64::MAX);

/// How a recorded round's warp tail was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RoundTail {
    /// The merge runs the full sequential `finish_round`: final rounds
    /// (the drain-all barrier must see real miss times) and rounds whose
    /// MLP-window overflow would pop a still-deferred miss entry.
    Deferred,
    /// The local tick already ran the warp tail (`rounds_done`, the MLP
    /// window, the local wheel push, the anchor dedupe); the merge only
    /// books stats/items, services misses (replacing the sentinel), and
    /// materializes the recorded global pushes.
    Applied {
        /// Lower bound on the warp's finish-wakeup pop: the scheduled
        /// wakeup plus one cycle per remaining round. Feeds the main
        /// thread's guard heap that bounds future horizons.
        guard_key: Cycle,
        /// The global `SmxWork` event this tail's `try_anchor` won, to be
        /// pushed by the merge at the equivalent sequential position.
        anchor_push: Option<Cycle>,
        /// The tail pushed [`SENTINEL`] into `outstanding_mem`; the merge
        /// must overwrite the oldest sentinel with the real miss time.
        sentinel: bool,
    },
}

/// One deferred round: everything `merge_round` needs to replay the
/// global half of `run_round` (L2/DRAM service, stats, warp bookkeeping)
/// without re-deriving addresses. The coalesced miss lines live in the
/// shard's `miss_lines` arena; `miss_off`/`miss_len` index into it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RoundOut {
    /// Warp slot that issued the round.
    pub slot: u32,
    /// Active-lane count this round (items accounting).
    pub active: u32,
    /// Whether the warp executes child work (items_child vs items_inline).
    pub is_child: bool,
    /// The class's per-item compute cost.
    pub compute: u64,
    /// Line index of the round's store, if the class writes.
    pub write_line: Option<u64>,
    /// Total coalesced lines the L1 was probed with.
    pub lines: u32,
    /// How many of them hit in the L1.
    pub hits: u64,
    /// Start of this round's miss lines in the shard's `miss_lines`.
    pub miss_off: u32,
    /// Number of miss lines.
    pub miss_len: u32,
    /// Whether the warp tail ran locally or is left to the merge.
    pub tail: RoundTail,
}

/// One deferred effect of a shard-local tick, replayed by the merge
/// phase in the order the sequential backend would have produced it.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TickOp {
    /// A drained wakeup found the warp past its last round: finish it
    /// (and possibly its CTA / kernel cascade) on the main thread.
    Finish { slot: u32 },
    /// A not-yet-started warp was selected: run the full `start_warp`
    /// (controller decisions, child-kernel creation) on the main thread.
    Start { slot: u32 },
    /// A started warp issued a round; the local half already ran.
    Round(RoundOut),
}

/// One recorded anchor tick of a lookahead span. The op/miss/guard-key
/// arena ranges start where the previous record's ranges end.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TickRec {
    /// The anchor cycle this tick executed.
    pub cycle: Cycle,
    /// End of this tick's ops in the shard's `ops` arena. (Miss lines
    /// need no per-tick end: each `RoundOut` carries its own
    /// `miss_off`/`miss_len` slice into the `miss_lines` arena.)
    pub ops_end: u32,
    /// End of this tick's guard keys in the `guard_keys` arena.
    pub keys_end: u32,
    /// Local wakeups drained (the merge folds them into `events_local`).
    pub drained: u32,
    /// Max local-wheel backlog after this tick's wakeup pushes.
    pub backlog_max: u64,
    /// The tick drained nothing and issued nothing.
    pub idle: bool,
    /// The anchor tail ran locally (non-stop tick): the merge
    /// materializes `anchor_after`/`anchor_relay` instead of re-running
    /// the re-anchor against live state.
    pub tail_applied: bool,
    /// Locally decided "anchor fired with nothing at all" (idle and no
    /// pending local wakeup); the merge bumps `dead_wakeups`.
    pub dead_wakeup: bool,
    /// The tail's `try_anchor(now + 1)` won (ready warps pull the SMX
    /// back next cycle): the merge owes this global event.
    pub anchor_after: Option<Cycle>,
    /// The tail's relay `try_anchor(next local wakeup)` won: the merge
    /// owes this global event.
    pub anchor_relay: Option<Cycle>,
}

/// One SMX plus the per-SMX mutable state the parallel backend ships to
/// worker threads. Derefs to [`Smx`], so all sequential-path accessors
/// (`warp`, `select_ready`, `local`, `anchors`, …) keep working
/// unchanged on `Vec<SmxShard>`.
pub(crate) struct SmxShard {
    pub smx: Smx,
    /// This SMX's private L1 tag + MSHR state (split out of the global
    /// `MemSystem` so shard ticks can probe tags without touching it).
    pub l1: SmxL1,
    /// Coalescing buffer: sequential addresses, then the merged lines.
    pub addr_buf: Vec<u64>,
    /// Merge target for the two-block coalescer; swaps with `addr_buf`.
    pub scratch_buf: Vec<u64>,
    /// Outbound effects of the current span, in sequential-replay order.
    pub ops: Vec<TickOp>,
    /// Arena of coalesced L1 miss lines referenced by `RoundOut`s.
    pub miss_lines: Vec<u64>,
    /// Recorded ticks of the current span, in cycle order.
    pub ticks: Vec<TickRec>,
    /// Merge cursor into `ticks`: the next record to replay.
    pub ticks_next: usize,
    /// Guard keys recorded by span tails for warps that stayed ready
    /// past the issue loop (see `TickRec::keys_end`).
    pub guard_keys: Vec<Cycle>,
    /// Local wakeups drained by this SMX (summed into the report). Span
    /// drains are recorded per tick and folded in at merge time.
    pub events_local: u64,
    /// Scratch: max wheel backlog within the current span tick.
    tick_backlog: u64,
}

impl SmxShard {
    pub fn new(id: SmxId, cfg: &GpuConfig) -> Self {
        SmxShard {
            smx: Smx::new(id, cfg),
            l1: SmxL1::new(&cfg.mem),
            addr_buf: Vec::with_capacity(128),
            scratch_buf: Vec::with_capacity(128),
            ops: Vec::new(),
            miss_lines: Vec::new(),
            ticks: Vec::new(),
            ticks_next: 0,
            guard_keys: Vec::new(),
            events_local: 0,
            tick_backlog: 0,
        }
    }

    /// Serializes the shard's persistent state: the SMX, its L1/MSHRs,
    /// and the local-event counter. The span-scratch arenas (`addr_buf`,
    /// `scratch_buf`, `ops`, `miss_lines`, `ticks`, `guard_keys`) are
    /// empty between events and are not written.
    pub fn encode_state(&mut self, w: &mut ByteWriter) {
        self.smx.encode_state(w);
        self.l1.encode_state(w);
        w.put_u64(self.events_local);
    }

    /// Restores [`encode_state`](SmxShard::encode_state) bytes into a
    /// config-constructed shard.
    ///
    /// # Errors
    ///
    /// Propagates geometry mismatches from the SMX and L1 decoders.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), SnapError> {
        self.smx.decode_state(r)?;
        self.l1 = SmxL1::decode_state(r)?;
        self.events_local = r.get_u64()?;
        Ok(())
    }

    /// True when the next recorded (not yet merged) tick of the current
    /// span fires at `now` — the main loop then replays it instead of
    /// dispatching a new span.
    #[inline]
    pub fn has_recorded(&self, now: Cycle) -> bool {
        self.ticks
            .get(self.ticks_next)
            .is_some_and(|r| r.cycle == now)
    }

    /// True when every recorded tick of the span has been merged (also
    /// true between spans).
    #[inline]
    pub fn merge_exhausted(&self) -> bool {
        self.ticks_next >= self.ticks.len()
    }

    /// The local phase of a lookahead span: starting at the `start`
    /// anchor, run this SMX's anchor ticks in cycle order until a tick
    /// needs the main thread (warp start/finish, unpredictable round
    /// tail) or the next anchor lies past `horizon`. The caller proves
    /// that no cross-shard effect can reach this SMX within
    /// `[start, horizon]` (DESIGN.md §12); under that guarantee the
    /// local wheel, ready set, and anchor registry evolve exactly as the
    /// sequential backend would evolve them.
    ///
    /// Runs on a worker thread; must only touch `self`, the (frozen)
    /// config, and the (frozen) spec table.
    pub fn local_tick_span(
        &mut self,
        start: Cycle,
        horizon: Cycle,
        cfg: &GpuConfig,
        specs: &SpecTable,
    ) {
        debug_assert!(self.ticks.is_empty() && self.ticks_next == 0, "unmerged span");
        debug_assert!(self.ops.is_empty() && self.miss_lines.is_empty());
        debug_assert!(self.guard_keys.is_empty());
        debug_assert!(start <= horizon);
        let mut now = start;
        loop {
            if self.span_tick(now, cfg, specs) {
                break;
            }
            // The tail ran locally, so the anchor registry already knows
            // this SMX's next interesting cycle; keep ticking while it
            // stays inside the proven-safe window.
            match self.smx.anchors.iter().copied().min() {
                Some(next) if next <= horizon => {
                    debug_assert!(next > now, "anchor registry went backwards");
                    now = next;
                }
                _ => break,
            }
        }
    }

    /// One anchor tick of a span: the exact drain + issue structure of
    /// `Simulation::on_smx_work`, recording effects instead of applying
    /// the global ones. Returns `true` when this tick must be the span's
    /// last (its merge needs live global state for a warp start, warp
    /// finish, or deferred round tail).
    fn span_tick(&mut self, now: Cycle, cfg: &GpuConfig, specs: &SpecTable) -> bool {
        let pos = self
            .smx
            .anchors
            .iter()
            .position(|&a| a == now)
            .expect("anchor fired without registration");
        self.smx.anchors.swap_remove(pos);
        self.tick_backlog = 0;
        let mut idle = true;
        let mut drained = 0u32;
        let mut stop = false;
        while self.smx.local.peek_time() == Some(now) {
            let (_, slot) = self.smx.local.pop().expect("peeked wakeup");
            drained += 1;
            idle = false;
            let w = self.smx.warp(slot);
            if w.started && w.rounds_done >= w.rounds_total {
                // Deferred `finish_warp`: the warp stays resident until
                // the merge. It is not ready, so the issue loop below
                // ignores it exactly like the sequential path (where GTO
                // falls through a non-ready `last_issued` the same way).
                self.ops.push(TickOp::Finish { slot });
                stop = true;
            } else {
                self.smx.mark_ready(slot);
            }
        }
        if self.smx.has_ready() {
            idle = false;
            for _ in 0..cfg.issue_width {
                let Some(slot) = self.smx.select_ready() else {
                    break;
                };
                if self.smx.warp(slot).started {
                    let mut round = self.local_round(slot, cfg, specs);
                    // Once the tick hit its stop trigger, later rounds
                    // must defer their tails too: applying one would
                    // insert wheel/anchor entries *ahead* of the deferred
                    // op's merge-time replay, and the replayed
                    // `ensure_anchor` would lose pushes the sequential
                    // order wins (the span stops at this tick regardless,
                    // so local application buys nothing).
                    if stop || !self.apply_round_tail(now, &mut round, cfg) {
                        stop = true;
                    }
                    self.ops.push(TickOp::Round(round));
                } else {
                    self.ops.push(TickOp::Start { slot });
                    stop = true;
                }
            }
        }
        let need_anchor = self.smx.has_ready();
        let mut anchor_after = None;
        let mut anchor_relay = None;
        let mut dead = false;
        if !stop {
            // The sequential tail of `on_smx_work`, applied locally in
            // the same order (the dedupe outcome depends on it): ready
            // warps pull the SMX back at `now + 1`, then the next local
            // wakeup is relayed. Won pushes are recorded for the merge.
            if need_anchor && self.smx.try_anchor(now + 1) {
                anchor_after = Some(now + 1);
            }
            if let Some(next) = self.smx.local.peek_time() {
                debug_assert!(next > now, "undrained wakeup at the anchor cycle");
                if self.smx.try_anchor(next) {
                    anchor_relay = Some(next);
                }
            } else if idle {
                dead = true;
            }
            if need_anchor {
                // Warps that stayed ready past the issue loop re-arm
                // every cycle; each gets a fresh finish-pop lower bound
                // (earliest next issue + one cycle per remaining round)
                // so the guard heap stays sound for the next horizon.
                let mut keys = std::mem::take(&mut self.guard_keys);
                let smx = &self.smx;
                smx.for_each_ready(|slot| {
                    let w = smx.warp(slot);
                    let left = w.rounds_total.saturating_sub(w.rounds_done) as u64;
                    keys.push(now + 1 + left);
                });
                self.guard_keys = keys;
            }
        }
        self.ticks.push(TickRec {
            cycle: now,
            ops_end: self.ops.len() as u32,
            keys_end: self.guard_keys.len() as u32,
            drained,
            backlog_max: self.tick_backlog,
            idle,
            tail_applied: !stop,
            dead_wakeup: dead,
            anchor_after,
            anchor_relay,
        });
        stop
    }

    /// Runs the warp tail of `finish_round` locally when every input is
    /// known inside the shard, mirroring the sequential mutations
    /// byte-for-byte. Returns `false` — leaving `round.tail` as
    /// [`RoundTail::Deferred`] and stopping the span — when the tail
    /// needs the merge: final rounds (the drain-all barrier must see
    /// real miss completion times) and rounds whose MLP-window overflow
    /// would consume a still-deferred [`SENTINEL`] entry.
    fn apply_round_tail(&mut self, now: Cycle, round: &mut RoundOut, cfg: &GpuConfig) -> bool {
        let mlp = cfg.mlp_depth as usize;
        let hit_lat = cfg.mem.l1_hit_latency;
        let miss_deferred = round.miss_len > 0;
        // A sentinel stands in for the miss completion time only if the
        // real one is strictly in the future (else the sequential tail
        // would not have pushed at all). The L1+crossbar floor under
        // every miss guarantees that unless a config zeroes both.
        if miss_deferred && hit_lat + cfg.mem.xbar_latency == 0 {
            return false;
        }
        let push = if miss_deferred {
            Some(SENTINEL)
        } else if round.lines > 0 && hit_lat > 0 {
            Some(now + hit_lat)
        } else {
            None
        };
        {
            let w = self.smx.warp(round.slot);
            if w.rounds_done + 1 >= w.rounds_total {
                return false;
            }
            let len_after = w.outstanding_mem.len() + usize::from(push.is_some());
            let pops = len_after.saturating_sub(mlp.saturating_sub(1));
            for i in 0..pops.min(w.outstanding_mem.len()) {
                if w.outstanding_mem[i] == SENTINEL {
                    return false;
                }
            }
            if pops > w.outstanding_mem.len() && push == Some(SENTINEL) {
                return false;
            }
        }
        // Commit: the exact warp tail of `finish_round`.
        let w = self.smx.warp_mut(round.slot);
        w.rounds_done += 1;
        let mut done = now + round.compute + 1;
        if let Some(v) = push {
            w.outstanding_mem.push_back(v);
        }
        while w.outstanding_mem.len() > mlp.saturating_sub(1) {
            let oldest = w.outstanding_mem.pop_front().expect("non-empty");
            debug_assert!(oldest != SENTINEL, "sentinel escaped the overflow precheck");
            done = done.max(oldest);
        }
        let left = (w.rounds_total - w.rounds_done) as u64;
        // `schedule_wakeup`, shard-locally: the wheel push and the anchor
        // dedupe run here; the guard key and any won global event are
        // recorded for the merge to materialize in replay order.
        self.smx.local.push(done, round.slot);
        self.tick_backlog = self.tick_backlog.max(self.smx.local.len() as u64);
        let anchor_push = if self.smx.try_anchor(done) { Some(done) } else { None };
        round.tail = RoundTail::Applied {
            guard_key: done + left,
            anchor_push,
            sentinel: push == Some(SENTINEL),
        };
        true
    }

    /// The shard-local half of `Simulation::run_round`: address
    /// generation, coalescing, and the L1 tag probe. Byte-for-byte the
    /// same address math as the sequential path; the warp's
    /// `rounds_done` is deliberately *not* incremented here (the round
    /// tail does it — locally when applied, at the merge when deferred),
    /// which is safe because a warp issues at most once per tick.
    fn local_round(&mut self, slot: u32, cfg: &GpuConfig, specs: &SpecTable) -> RoundOut {
        let mut addrs = std::mem::take(&mut self.addr_buf);
        let mut scratch = std::mem::take(&mut self.scratch_buf);
        addrs.clear();
        scratch.clear();
        let (compute, active, write_line, is_child, seq_len) = {
            let (w, lanes) = self.smx.warp_and_lanes(slot);
            let r = w.rounds_done;
            let class = specs.class(w.class);
            let mut active = 0u32;
            let mut first_seed = None;
            for lane in lanes {
                if lane.items > r {
                    active += 1;
                    if first_seed.is_none() {
                        first_seed = Some(lane.rand_seed);
                    }
                    if class.seq_bytes_per_item > 0 {
                        addrs.push(lane.seq_base + r as u64 * class.seq_bytes_per_item as u64);
                    }
                    for k in 0..class.rand_refs_per_item {
                        scratch.push(class.rand_addr(lane.rand_seed, r, k));
                    }
                }
            }
            let seq_len = addrs.len();
            addrs.extend_from_slice(&scratch);
            let write_line = if class.writes_per_item > 0 && class.rand_region_bytes > 0 {
                first_seed.map(|s| {
                    class.rand_addr(s ^ 0x5757_5757, r, 0)
                        >> cfg.mem.line_bytes.trailing_zeros()
                })
            } else {
                None
            };
            (class.compute_per_item as u64, active, write_line, w.is_child_work, seq_len)
        };
        coalesce_lines_parts(&mut addrs, seq_len, &mut scratch, cfg.mem.line_bytes);
        let miss_off = self.miss_lines.len();
        let hits = if addrs.is_empty() {
            0
        } else {
            self.l1.probe(&addrs, &mut self.miss_lines)
        };
        let out = RoundOut {
            slot,
            active,
            is_child,
            compute,
            write_line,
            lines: addrs.len() as u32,
            hits,
            miss_off: miss_off as u32,
            miss_len: (self.miss_lines.len() - miss_off) as u32,
            tail: RoundTail::Deferred,
        };
        addrs.clear();
        self.addr_buf = addrs;
        self.scratch_buf = scratch;
        out
    }
}

impl std::ops::Deref for SmxShard {
    type Target = Smx;
    #[inline]
    fn deref(&self) -> &Smx {
        &self.smx
    }
}

impl std::ops::DerefMut for SmxShard {
    #[inline]
    fn deref_mut(&mut self) -> &mut Smx {
        &mut self.smx
    }
}
