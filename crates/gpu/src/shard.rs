//! Per-SMX simulation shards for the deterministic parallel backend.
//!
//! A [`SmxShard`] bundles one [`Smx`] with everything its tick mutates
//! privately: the L1 cache (tag state only — L2/DRAM stay global), the
//! coalescing scratch buffers, and the tick's outbound effect list. The
//! shard is `Send`, so [`SimBackend::Par`](crate::SimBackend::Par) can
//! move same-cycle ticks onto a worker pool and run them concurrently.
//!
//! The protocol is a two-phase conservative window (DESIGN.md §12):
//!
//! 1. **Local phase** (worker thread, [`SmxShard::local_tick`]): drain
//!    the SMX's local wakeup wheel at the anchor cycle, run the issue
//!    loop, and record every effect that would touch state outside the
//!    shard as a [`TickOp`]. Address generation, coalescing, and the L1
//!    tag probe happen here — they read only the shard — but *no* stats,
//!    MSHR admission, L2/DRAM traffic, warp completion, or global event
//!    pushes.
//! 2. **Merge phase** (main thread, `Simulation::merge_tick`): replay
//!    the recorded ops in the exact order the sequential backend would
//!    have produced them, against the shared `MemSystem`, GMU,
//!    controller, and global event queue.
//!
//! Because the ops are replayed in global pop order and each op carries
//! everything the merge needs, the merged run is byte-identical to the
//! sequential one regardless of worker interleaving.

use dynapar_engine::snap::{ByteReader, ByteWriter, SnapError};
use dynapar_engine::Cycle;

use crate::config::GpuConfig;
use crate::ids::SmxId;
use crate::kernel::SpecTable;
use crate::mem::{coalesce_lines_parts, SmxL1};
use crate::smx::Smx;

/// One deferred round: everything `merge_round` needs to replay the
/// global half of `run_round` (L2/DRAM service, stats, warp bookkeeping)
/// without re-deriving addresses. The coalesced miss lines live in the
/// shard's `miss_lines` arena; `miss_off`/`miss_len` index into it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RoundOut {
    /// Warp slot that issued the round.
    pub slot: u32,
    /// Active-lane count this round (items accounting).
    pub active: u32,
    /// Whether the warp executes child work (items_child vs items_inline).
    pub is_child: bool,
    /// The class's per-item compute cost.
    pub compute: u64,
    /// Line index of the round's store, if the class writes.
    pub write_line: Option<u64>,
    /// Total coalesced lines the L1 was probed with.
    pub lines: u32,
    /// How many of them hit in the L1.
    pub hits: u64,
    /// Start of this round's miss lines in the shard's `miss_lines`.
    pub miss_off: u32,
    /// Number of miss lines.
    pub miss_len: u32,
}

/// One deferred effect of a shard-local tick, replayed by the merge
/// phase in the order the sequential backend would have produced it.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TickOp {
    /// A drained wakeup found the warp past its last round: finish it
    /// (and possibly its CTA / kernel cascade) on the main thread.
    Finish { slot: u32 },
    /// A not-yet-started warp was selected: run the full `start_warp`
    /// (controller decisions, child-kernel creation) on the main thread.
    Start { slot: u32 },
    /// A started warp issued a round; the local half already ran.
    Round(RoundOut),
}

/// One SMX plus the per-SMX mutable state the parallel backend ships to
/// worker threads. Derefs to [`Smx`], so all sequential-path accessors
/// (`warp`, `select_ready`, `local`, `anchors`, …) keep working
/// unchanged on `Vec<SmxShard>`.
pub(crate) struct SmxShard {
    pub smx: Smx,
    /// This SMX's private L1 tag + MSHR state (split out of the global
    /// `MemSystem` so shard ticks can probe tags without touching it).
    pub l1: SmxL1,
    /// Coalescing buffer: sequential addresses, then the merged lines.
    pub addr_buf: Vec<u64>,
    /// Merge target for the two-block coalescer; swaps with `addr_buf`.
    pub scratch_buf: Vec<u64>,
    /// Outbound effects of the current tick, in sequential-replay order.
    pub ops: Vec<TickOp>,
    /// Arena of coalesced L1 miss lines referenced by `RoundOut`s.
    pub miss_lines: Vec<u64>,
    /// Local wakeups drained by this SMX (summed into the report).
    pub events_local: u64,
    /// Did the tick drain nothing and issue nothing? (dead-anchor count)
    pub tick_idle: bool,
    /// Were warps still ready after the issue loop? (re-anchor at now+1)
    pub tick_need_anchor: bool,
}

impl SmxShard {
    pub fn new(id: SmxId, cfg: &GpuConfig) -> Self {
        SmxShard {
            smx: Smx::new(id, cfg),
            l1: SmxL1::new(&cfg.mem),
            addr_buf: Vec::with_capacity(128),
            scratch_buf: Vec::with_capacity(128),
            ops: Vec::new(),
            miss_lines: Vec::new(),
            events_local: 0,
            tick_idle: false,
            tick_need_anchor: false,
        }
    }

    /// Serializes the shard's persistent state: the SMX, its L1/MSHRs,
    /// and the local-event counter. The tick-scratch buffers (`addr_buf`,
    /// `scratch_buf`, `ops`, `miss_lines`) are empty between events and
    /// are not written.
    pub fn encode_state(&mut self, w: &mut ByteWriter) {
        self.smx.encode_state(w);
        self.l1.encode_state(w);
        w.put_u64(self.events_local);
    }

    /// Restores [`encode_state`](SmxShard::encode_state) bytes into a
    /// config-constructed shard.
    ///
    /// # Errors
    ///
    /// Propagates geometry mismatches from the SMX and L1 decoders.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), SnapError> {
        self.smx.decode_state(r)?;
        self.l1 = SmxL1::decode_state(r)?;
        self.events_local = r.get_u64()?;
        Ok(())
    }

    /// The local phase of one `SmxWork` anchor at cycle `now`: the exact
    /// drain + issue structure of `Simulation::on_smx_work`, with every
    /// effect that leaves the shard recorded as a [`TickOp`] instead of
    /// applied. Runs on a worker thread; must only touch `self`, the
    /// (frozen) config, and the (frozen) spec table.
    pub fn local_tick(&mut self, now: Cycle, cfg: &GpuConfig, specs: &SpecTable) {
        debug_assert!(self.ops.is_empty() && self.miss_lines.is_empty());
        let pos = self
            .smx
            .anchors
            .iter()
            .position(|&a| a == now)
            .expect("anchor fired without registration");
        self.smx.anchors.swap_remove(pos);
        let mut idle = true;
        while self.smx.local.peek_time() == Some(now) {
            let (_, slot) = self.smx.local.pop().expect("peeked wakeup");
            self.events_local += 1;
            idle = false;
            let w = self.smx.warp(slot);
            if w.started && w.rounds_done >= w.rounds_total {
                // Deferred `finish_warp`: the warp stays resident until
                // the merge. It is not ready, so the issue loop below
                // ignores it exactly like the sequential path (where GTO
                // falls through a non-ready `last_issued` the same way).
                self.ops.push(TickOp::Finish { slot });
            } else {
                self.smx.mark_ready(slot);
            }
        }
        if self.smx.has_ready() {
            idle = false;
            for _ in 0..cfg.issue_width {
                let Some(slot) = self.smx.select_ready() else {
                    break;
                };
                if self.smx.warp(slot).started {
                    let round = self.local_round(slot, cfg, specs);
                    self.ops.push(TickOp::Round(round));
                } else {
                    self.ops.push(TickOp::Start { slot });
                }
            }
        }
        self.tick_need_anchor = self.smx.has_ready();
        self.tick_idle = idle;
    }

    /// The shard-local half of `Simulation::run_round`: address
    /// generation, coalescing, and the L1 tag probe. Byte-for-byte the
    /// same address math as the sequential path; the warp's
    /// `rounds_done` is deliberately *not* incremented here (the merge
    /// phase's shared tail does it), which is safe because a warp issues
    /// at most once per tick.
    fn local_round(&mut self, slot: u32, cfg: &GpuConfig, specs: &SpecTable) -> RoundOut {
        let mut addrs = std::mem::take(&mut self.addr_buf);
        let mut scratch = std::mem::take(&mut self.scratch_buf);
        addrs.clear();
        scratch.clear();
        let (compute, active, write_line, is_child, seq_len) = {
            let (w, lanes) = self.smx.warp_and_lanes(slot);
            let r = w.rounds_done;
            let class = specs.class(w.class);
            let mut active = 0u32;
            let mut first_seed = None;
            for lane in lanes {
                if lane.items > r {
                    active += 1;
                    if first_seed.is_none() {
                        first_seed = Some(lane.rand_seed);
                    }
                    if class.seq_bytes_per_item > 0 {
                        addrs.push(lane.seq_base + r as u64 * class.seq_bytes_per_item as u64);
                    }
                    for k in 0..class.rand_refs_per_item {
                        scratch.push(class.rand_addr(lane.rand_seed, r, k));
                    }
                }
            }
            let seq_len = addrs.len();
            addrs.extend_from_slice(&scratch);
            let write_line = if class.writes_per_item > 0 && class.rand_region_bytes > 0 {
                first_seed.map(|s| {
                    class.rand_addr(s ^ 0x5757_5757, r, 0)
                        >> cfg.mem.line_bytes.trailing_zeros()
                })
            } else {
                None
            };
            (class.compute_per_item as u64, active, write_line, w.is_child_work, seq_len)
        };
        coalesce_lines_parts(&mut addrs, seq_len, &mut scratch, cfg.mem.line_bytes);
        let miss_off = self.miss_lines.len();
        let hits = if addrs.is_empty() {
            0
        } else {
            self.l1.probe(&addrs, &mut self.miss_lines)
        };
        let out = RoundOut {
            slot,
            active,
            is_child,
            compute,
            write_line,
            lines: addrs.len() as u32,
            hits,
            miss_off: miss_off as u32,
            miss_len: (self.miss_lines.len() - miss_off) as u32,
        };
        addrs.clear();
        self.addr_buf = addrs;
        self.scratch_buf = scratch;
        out
    }
}

impl std::ops::Deref for SmxShard {
    type Target = Smx;
    #[inline]
    fn deref(&self) -> &Smx {
        &self.smx
    }
}

impl std::ops::DerefMut for SmxShard {
    #[inline]
    fn deref_mut(&mut self) -> &mut Smx {
        &mut self.smx
    }
}
