//! The event-driven simulation driver.
//!
//! Execution model recap (see crate docs): warps advance in *rounds* (one
//! work item per active lane per round). The SMX issue scheduler grants
//! `issue_width` round-issues per cycle; a round's duration is its compute
//! cost plus the latency of its coalesced memory transactions. Parent
//! threads consult the [`LaunchController`] exactly once, at warp start
//! (the top-of-kernel launch site of Fig. 3), and either spawn a child
//! kernel (paying the `A·x + b` arrival delay into the GMU), push
//! aggregated CTAs (DTBL), or keep their items and loop over them inline.

use std::sync::Arc;

use dynapar_engine::json::Json;
use dynapar_engine::metrics::{MetricsLevel, MetricsRegistry};
use dynapar_engine::par::Pool;
use dynapar_engine::profile::Profiler;
use dynapar_engine::snap::{ByteReader, ByteWriter, SnapError};
use dynapar_engine::stats::TimeWeighted;
use dynapar_engine::{Cycle, EventHorizon, QueueBackend, SchedQueue};

use crate::artifact::{CcqsSample, RunArtifact, RunOutcome};
use crate::config::{CtaPlacement, GpuConfig, StreamPolicy};
use crate::controller::{
    ChildRequest, ControllerEvent, InlineAll, LaunchController, LaunchDecision,
};
use crate::gmu::Gmu;
use crate::ids::{KernelId, SmxId, StreamId};
use crate::kernel::{AggCta, CtaDirectory, DpParams, KernelKind, KernelRt, SpecTable};
use crate::mem::{coalesce_lines_parts, MemSystem};
use crate::profile as ph;
use crate::shard::{RoundOut, RoundTail, SmxShard, TickOp, SENTINEL};
use crate::snap::{get_opt_cycle, put_opt_cycle};
use crate::smx::{CtaRt, WarpRt};
use crate::stats::{KernelRole, KernelSummary, SimReport, TimelineSample};
use crate::telemetry::SimSeries;
use crate::trace::{Trace, TraceEvent};
use crate::work::{KernelDesc, ThreadSource, ThreadWork};
#[cfg(test)]
use crate::work::DpSpec;

/// Simulator events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A kernel (host or child) arrives in the GMU pending pool.
    KernelArrive(KernelId),
    /// DTBL-aggregated CTAs become dispatchable.
    AggArrive { kernel: KernelId, count: u32 },
    /// Run the CTA dispatcher.
    Dispatch,
    /// A dispatched CTA begins on its SMX.
    CtaStart { smx: SmxId, cta_slot: u32 },
    /// Anchor: one SMX has work at this cycle — local wakeups to drain
    /// and/or ready warps to issue. Per-warp wakeups themselves live in
    /// the SMX's local wheel and never enter the global queue; at most one
    /// anchor per SMX is pending for any given cycle.
    SmxWork(SmxId),
    /// A completed kernel's HWQ slot frees after the turnaround floor.
    HwqRelease(KernelId),
    /// Periodic timeline sample.
    Sample,
}

fn put_ev(w: &mut ByteWriter, ev: Ev) {
    match ev {
        Ev::KernelArrive(k) => {
            w.put_u8(0);
            w.put_u32(k.0);
        }
        Ev::AggArrive { kernel, count } => {
            w.put_u8(1);
            w.put_u32(kernel.0);
            w.put_u32(count);
        }
        Ev::Dispatch => w.put_u8(2),
        Ev::CtaStart { smx, cta_slot } => {
            w.put_u8(3);
            w.put_u8(smx.0);
            w.put_u32(cta_slot);
        }
        Ev::SmxWork(s) => {
            w.put_u8(4);
            w.put_u8(s.0);
        }
        Ev::HwqRelease(k) => {
            w.put_u8(5);
            w.put_u32(k.0);
        }
        Ev::Sample => w.put_u8(6),
    }
}

fn get_ev(r: &mut ByteReader<'_>) -> Result<Ev, SnapError> {
    Ok(match r.get_u8()? {
        0 => Ev::KernelArrive(KernelId(r.get_u32()?)),
        1 => Ev::AggArrive {
            kernel: KernelId(r.get_u32()?),
            count: r.get_u32()?,
        },
        2 => Ev::Dispatch,
        3 => Ev::CtaStart {
            smx: SmxId(r.get_u8()?),
            cta_slot: r.get_u32()?,
        },
        4 => Ev::SmxWork(SmxId(r.get_u8()?)),
        5 => Ev::HwqRelease(KernelId(r.get_u32()?)),
        6 => Ev::Sample,
        tag => return Err(SnapError::BadTag { what: "Ev", tag }),
    })
}

/// One recorded controller interaction, kept (only while a snapshot is
/// armed) so a resumed run can rebuild the policy's internal state by
/// replaying the exact decide/observe sequence into a fresh controller.
/// Controllers are deterministic functions of this sequence — the trait
/// passes values only, never references into simulator state — so the
/// replayed controller is indistinguishable from the original.
#[derive(Debug, Clone)]
enum ReplayEntry {
    /// A `decide` call with the full request plus the returned decision.
    /// The decision is stored for *verification only*: resume replays the
    /// request into the fresh controller and rejects the snapshot if the
    /// result diverges — which catches a controller that shares its name
    /// with the snapshot's but carries different parameters (e.g. two
    /// `Fixed-Threshold` instances with different thresholds).
    Decide(ChildRequest, LaunchDecision),
    /// An `observe` call with the delivered event.
    Observe(ControllerEvent),
}

fn put_decision(w: &mut ByteWriter, d: LaunchDecision) {
    w.put_u8(match d {
        LaunchDecision::Kernel => 0,
        LaunchDecision::Aggregated => 1,
        LaunchDecision::Redistribute => 2,
        LaunchDecision::Inline => 3,
    });
}

fn get_decision(r: &mut ByteReader<'_>) -> Result<LaunchDecision, SnapError> {
    Ok(match r.get_u8()? {
        0 => LaunchDecision::Kernel,
        1 => LaunchDecision::Aggregated,
        2 => LaunchDecision::Redistribute,
        3 => LaunchDecision::Inline,
        tag => return Err(SnapError::BadTag { what: "LaunchDecision", tag }),
    })
}

fn put_replay(w: &mut ByteWriter, e: &ReplayEntry) {
    match e {
        ReplayEntry::Decide(req, decision) => {
            w.put_u8(0);
            w.put_u64(req.now.as_u64());
            w.put_u32(req.parent_kernel.0);
            w.put_u8(req.depth);
            w.put_u32(req.items);
            w.put_u32(req.child_ctas);
            w.put_u32(req.child_threads);
            w.put_u32(req.child_warps_per_cta);
            w.put_u32(req.warp_prior_launches);
            w.put_u32(req.default_threshold);
            w.put_u32(req.pending_kernels);
            put_decision(w, *decision);
        }
        ReplayEntry::Observe(ev) => {
            w.put_u8(1);
            match *ev {
                ControllerEvent::ChildCtaStart { now } => {
                    w.put_u8(0);
                    w.put_u64(now.as_u64());
                }
                ControllerEvent::ChildCtaFinish { now, exec_cycles } => {
                    w.put_u8(1);
                    w.put_u64(now.as_u64());
                    w.put_u64(exec_cycles);
                }
                ControllerEvent::ChildWarpFinish { now, exec_cycles } => {
                    w.put_u8(2);
                    w.put_u64(now.as_u64());
                    w.put_u64(exec_cycles);
                }
            }
        }
    }
}

fn get_replay(r: &mut ByteReader<'_>) -> Result<ReplayEntry, SnapError> {
    Ok(match r.get_u8()? {
        0 => ReplayEntry::Decide(
            ChildRequest {
                now: Cycle(r.get_u64()?),
                parent_kernel: KernelId(r.get_u32()?),
                depth: r.get_u8()?,
                items: r.get_u32()?,
                child_ctas: r.get_u32()?,
                child_threads: r.get_u32()?,
                child_warps_per_cta: r.get_u32()?,
                warp_prior_launches: r.get_u32()?,
                default_threshold: r.get_u32()?,
                pending_kernels: r.get_u32()?,
            },
            get_decision(r)?,
        ),
        1 => ReplayEntry::Observe(match r.get_u8()? {
            0 => ControllerEvent::ChildCtaStart {
                now: Cycle(r.get_u64()?),
            },
            1 => ControllerEvent::ChildCtaFinish {
                now: Cycle(r.get_u64()?),
                exec_cycles: r.get_u64()?,
            },
            2 => ControllerEvent::ChildWarpFinish {
                now: Cycle(r.get_u64()?),
                exec_cycles: r.get_u64()?,
            },
            tag => return Err(SnapError::BadTag { what: "ControllerEvent", tag }),
        }),
        tag => return Err(SnapError::BadTag { what: "ReplayEntry", tag }),
    })
}

/// Which event-loop drives a run.
///
/// Both backends execute the *same* simulation: every report and
/// artifact byte is identical across `Seq` and `Par(n)` for any `n`
/// (pinned by the determinism suite). `Par` exploits the per-SMX wakeup
/// wheels of PR 3: when several SMXs have anchors at the same cycle,
/// their shard-local ticks (drain + issue + address generation + L1 tag
/// probe) run concurrently on a persistent [`Pool`], and the outbound
/// effects are merged into the global queue in pop order — conservative-
/// window PDES with the window pinned to "one cycle, SMX-local work
/// only" (DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimBackend {
    /// Single-threaded event loop (the default).
    #[default]
    Seq,
    /// Deterministic parallel ticks on a pool of `n` workers; `0`/`1`
    /// run the same batching machinery inline on the calling thread.
    Par(usize),
}

/// Lookahead window policy for the parallel backend (DESIGN.md §12).
///
/// Controls only *how far ahead* a shard may run locally per hand-off,
/// never what it computes: results are byte-identical across every
/// width, which is why the window deliberately stays out of the
/// artifact's config echo (and therefore out of the server's memo
/// hash) — it is a property of the run, not of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimWindow {
    /// Widen every span to the computed safe horizon, capped at
    /// [`AUTO_WINDOW_CAP`] cycles (the default).
    #[default]
    Auto,
    /// Cap spans at `n` cycles; `1` reproduces the PR 6 per-cycle
    /// window, where every anchor tick pays its own hand-off.
    Fixed(u64),
}

impl std::str::FromStr for SimWindow {
    type Err = String;

    /// Parses the `--sim-window` grammar: `auto` or an integer ≥ 1.
    fn from_str(s: &str) -> Result<Self, String> {
        if s.eq_ignore_ascii_case("auto") {
            return Ok(SimWindow::Auto);
        }
        match s.parse::<u64>() {
            Ok(n) if n >= 1 => Ok(SimWindow::Fixed(n)),
            _ => Err(format!(
                "invalid sim window '{s}': expected 'auto' or an integer >= 1"
            )),
        }
    }
}

/// Hard cap on [`SimWindow::Auto`] span width, in cycles. It bounds the
/// worst-case merge lag (recorded-but-unreplayed work held in shard
/// arenas) and keeps the horizon heaps short; in practice the guard
/// bound binds first at a few tens of cycles, so raising this has no
/// measurable effect.
pub const AUTO_WINDOW_CAP: u64 = 256;

/// Effective-window statistics of a parallel run: how many lookahead
/// spans were dispatched and how wide they actually came out.
/// Reported next to the artifact rather than inside it (exactly like
/// [`RunOutcome::profile`]): realized widths depend on the backend and
/// window flag, which must not leak into artifact bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WinStats {
    /// Spans dispatched (including degenerate single-tick ones).
    pub spans: u64,
    /// Total anchor ticks executed across all spans.
    pub ticks: u64,
    /// Power-of-two span-width histogram: `hist[k]` counts spans whose
    /// tick count `n` satisfies `2^k ≤ n < 2^(k+1)` (last bucket
    /// open-ended).
    pub hist: [u64; 16],
}

impl WinStats {
    fn record(&mut self, ticks: u64) {
        self.spans += 1;
        self.ticks += ticks;
        let b = (63 - ticks.max(1).leading_zeros()) as usize;
        self.hist[b.min(15)] += 1;
    }

    /// True when no spans ran (e.g. a sequential run).
    pub fn is_empty(&self) -> bool {
        self.spans == 0
    }

    /// Folds another run's span statistics into this one (the perf
    /// harness aggregates repeats and benchmarks this way).
    pub fn merge(&mut self, other: &WinStats) {
        self.spans += other.spans;
        self.ticks += other.ticks;
        for (a, b) in self.hist.iter_mut().zip(other.hist.iter()) {
            *a += b;
        }
    }
}

/// One periodic observation handed to a [`WatchHook`] at every sampling
/// tick (`GpuConfig::sample_period` cycles apart) — the same quantities
/// the windowed telemetry records, surfaced live so a daemon can stream
/// them while the run is still in flight. Pure observation: installing
/// a hook never changes simulated behavior or artifact bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchSample {
    /// Simulated cycle of the sample.
    pub now: u64,
    /// GMU pending-pool depth plus approved-but-not-arrived launches.
    pub queue_depth: f64,
    /// Occupied fraction of the hardware queues.
    pub hwq_utilization: f64,
    /// Device utilization (max of thread/register/shared-memory use).
    pub utilization: f64,
    /// Parent CTAs resident across all SMXs.
    pub parent_ctas: u32,
    /// Child CTAs resident across all SMXs.
    pub child_ctas: u32,
}

/// A shared sampling callback, invoked from the event loop; see
/// [`SimulationBuilder::watch`].
pub type WatchHook = std::sync::Arc<dyn Fn(WatchSample) + Send + Sync>;

/// Upper bound on each recycled-buffer free-list (`warp_mem_pool`,
/// `lane_pool`). Steady state needs at most one buffer per resident
/// warp/CTA — far below this — so the cap never bites in practice; it
/// exists so a pathological burst cannot pin memory for the rest of a
/// long run. Pinned by the `buffer_pools_are_bounded` test.
const POOL_CAP: usize = 1024;

/// Configures and seals a [`Simulation`].
///
/// The builder is the only way to construct a simulation: pick the
/// hardware [`config`](SimulationBuilder::config), plug in a
/// [`controller`](SimulationBuilder::controller) (default:
/// [`InlineAll`]), and opt into observability with
/// [`trace`](SimulationBuilder::trace) and
/// [`metrics`](SimulationBuilder::metrics). Everything chosen here is
/// fixed for the simulation's lifetime; the only mutation left on the
/// sealed [`Simulation`] is enqueueing host kernels before
/// [`run`](Simulation::run).
///
/// # Examples
///
/// ```
/// use dynapar_gpu::{GpuConfig, MetricsLevel, Simulation};
///
/// let sim = Simulation::builder(GpuConfig::test_small())
///     .metrics(MetricsLevel::Summary)
///     .trace(10_000)
///     .build();
/// let outcome = sim.run(); // empty run: terminates immediately
/// assert!(outcome.artifact.is_some());
/// assert!(outcome.trace.is_some());
/// ```
pub struct SimulationBuilder {
    cfg: GpuConfig,
    controller: Box<dyn LaunchController>,
    trace_capacity: Option<usize>,
    metrics: MetricsLevel,
    stream_policy: Option<StreamPolicy>,
    queue: QueueBackend,
    profile: bool,
    backend: SimBackend,
    window: SimWindow,
    snapshot_at: Option<u64>,
    snapshot_meta: Option<Json>,
    watch: Option<WatchHook>,
}

impl SimulationBuilder {
    /// Starts a builder for `cfg` with the defaults: [`InlineAll`]
    /// controller, no trace, metrics [`Off`](MetricsLevel::Off).
    pub fn new(cfg: GpuConfig) -> Self {
        SimulationBuilder {
            cfg,
            controller: Box::new(InlineAll),
            trace_capacity: None,
            metrics: MetricsLevel::default(),
            stream_policy: None,
            queue: QueueBackend::default(),
            profile: false,
            backend: SimBackend::default(),
            window: SimWindow::default(),
            snapshot_at: None,
            snapshot_meta: None,
            watch: None,
        }
    }

    /// Replaces the hardware configuration wholesale.
    pub fn config(mut self, cfg: GpuConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Installs the launch policy consulted at every device-launch site.
    pub fn controller(mut self, controller: Box<dyn LaunchController>) -> Self {
        self.controller = controller;
        self
    }

    /// Enables structured tracing, keeping at most `capacity` events;
    /// the log comes back in [`RunOutcome::trace`].
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Sets the observability level; anything above
    /// [`Off`](MetricsLevel::Off) makes [`Simulation::run`] produce a
    /// [`RunArtifact`].
    pub fn metrics(mut self, level: MetricsLevel) -> Self {
        self.metrics = level;
        self
    }

    /// Overrides the device-side stream policy without rebuilding the
    /// whole config.
    pub fn stream(mut self, policy: StreamPolicy) -> Self {
        self.stream_policy = Some(policy);
        self
    }

    /// Selects the global scheduler queue implementation (default:
    /// [`QueueBackend::Wheel`]). Both backends share the same ordering
    /// contract, so reports and artifacts are byte-identical across them;
    /// the heap stays available for differential testing and head-to-head
    /// benchmarking. Deliberately not part of [`GpuConfig`]: the backend
    /// is a property of the run, not of the simulated machine, and must
    /// not leak into the artifact's config echo.
    pub fn queue(mut self, backend: QueueBackend) -> Self {
        self.queue = backend;
        self
    }

    /// Selects the execution backend (default: [`SimBackend::Seq`]).
    /// Like the queue backend, this is a property of the run, not of the
    /// simulated machine: results are byte-identical across backends and
    /// the choice never leaks into the artifact's config echo.
    pub fn backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the lookahead window for the parallel backend (default:
    /// [`SimWindow::Auto`]). Ignored under [`SimBackend::Seq`]. Results
    /// are byte-identical at every width — the window trades hand-off
    /// overhead against merge lag, nothing else.
    pub fn sim_window(mut self, window: SimWindow) -> Self {
        self.window = window;
        self
    }

    /// Enables the host-side self-profiler: wall time and counts are
    /// attributed to simulator phases and come back in
    /// [`RunOutcome::profile`]. Profiling never influences simulated
    /// behavior — reports and artifacts stay byte-identical with it on.
    ///
    /// Requires the `profile` cargo feature; without it this is a no-op
    /// and `RunOutcome::profile` is always `None` (the instrumentation
    /// compiles down to nothing, which is the point of the gate).
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Arms a snapshot: the run simulates every event up to and
    /// including cycle `cycle`, then serializes its full deterministic
    /// state into [`RunOutcome::snapshot`] and keeps running to
    /// completion. Resuming the snapshot (on an identically configured
    /// builder) continues the run as if it had never been interrupted —
    /// every report and artifact byte matches the uninterrupted run.
    ///
    /// If the run completes before reaching `cycle`, no snapshot is
    /// produced and [`RunOutcome::snapshot`] is `None`.
    ///
    /// Snapshots are incompatible with [`trace`](Self::trace):
    /// [`build`](Self::build) panics when both are requested.
    pub fn snapshot_at(mut self, cycle: u64) -> Self {
        self.snapshot_at = Some(cycle);
        self
    }

    /// Attaches caller metadata (e.g. the canonical run identity) to the
    /// snapshot container's header under the `meta` key. Purely
    /// informational: resume never interprets it.
    pub fn snapshot_meta(mut self, meta: Json) -> Self {
        self.snapshot_meta = Some(meta);
        self
    }

    /// Installs a live sampling hook: `hook` receives one
    /// [`WatchSample`] per sampling tick while the run is in flight.
    /// Works at every metrics level (the sampler always runs — it also
    /// feeds the report timeline). Pure observation: reports and
    /// artifacts are byte-identical with or without a hook, which is
    /// what lets the daemon stream telemetry from a memoizable run.
    pub fn watch(mut self, hook: WatchHook) -> Self {
        self.watch = Some(hook);
        self
    }

    /// Seals the builder into a runnable [`Simulation`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`GpuConfig::validate`], the
    /// trace capacity is zero, or a snapshot is armed together with
    /// tracing (snapshots do not capture trace logs).
    pub fn build(self) -> Simulation {
        assert!(
            self.snapshot_at.is_none() || self.trace_capacity.is_none(),
            "snapshots do not support tracing: disable .trace() or .snapshot_at()"
        );
        let mut cfg = self.cfg;
        if let Some(p) = self.stream_policy {
            cfg.stream_policy = p;
        }
        let mut sim = Simulation::new(cfg, self.controller, self.queue);
        sim.trace = self.trace_capacity.map(Trace::new);
        sim.metrics_level = self.metrics;
        if self.metrics.timeseries() {
            sim.timeseries = Some(Box::new(SimSeries::new(&sim.cfg)));
        }
        sim.prof.set_enabled(self.profile);
        sim.backend = self.backend;
        sim.window = self.window;
        sim.snapshot_at = self.snapshot_at.map(Cycle);
        sim.snapshot_meta = self.snapshot_meta;
        sim.watch = self.watch;
        if sim.snapshot_at.is_some() {
            sim.replay = Some(Vec::new());
        }
        sim
    }

    /// Seals the builder into a [`Simulation`] resumed from `container`
    /// — bytes previously produced by an armed run's
    /// [`RunOutcome::snapshot`] (or read back from a snapshot file).
    ///
    /// The builder must describe the same run: identical [`GpuConfig`],
    /// identical metrics level, and a fresh controller of the same
    /// policy (its state is rebuilt by replaying the snapshot's recorded
    /// decide/observe log). A snapshot whose warm-up made *no* launch
    /// decisions is **policy-pristine** and may instead be resumed under
    /// any controller — that is the warm-start fork the sweep drivers
    /// build on. Do not call
    /// [`launch_host`](Simulation::launch_host) on a resumed simulation;
    /// the snapshot already contains every kernel.
    ///
    /// # Errors
    ///
    /// Rejects malformed or corrupted containers, geometry or metrics
    /// mismatches between the builder and the snapshot, cross-policy
    /// resume of non-pristine snapshots, and tracing (unsupported).
    pub fn build_resumed(self, container: &[u8]) -> Result<Simulation, SnapError> {
        if self.trace_capacity.is_some() {
            return Err(SnapError::Invalid(
                "resumed simulations do not support tracing",
            ));
        }
        let (job, state) = crate::snap::parse_snapshot(container)?;
        // Re-arming a later snapshot on the resumed run is allowed; the
        // decoded replay log seeds the new one so controller rebuild
        // stays possible across chained snapshots.
        let mut sim = self.build();
        sim.decode_state(&job, state)?;
        sim.resumed = true;
        Ok(sim)
    }
}

/// A complete simulated execution of one DP program under one launch
/// policy. Built via [`Simulation::builder`]; consumed by
/// [`run`](Simulation::run), which returns a [`RunOutcome`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dynapar_gpu::{
///     GpuConfig, InlineAll, KernelDesc, Simulation, ThreadSource, ThreadWork, WorkClass,
/// };
///
/// let mut sim = Simulation::builder(GpuConfig::test_small())
///     .controller(Box::new(InlineAll))
///     .build();
/// sim.launch_host(KernelDesc {
///     name: "demo".into(),
///     cta_threads: 64,
///     regs_per_thread: 16,
///     shmem_per_cta: 0,
///     class: Arc::new(WorkClass::compute_only("demo", 4)),
///     source: ThreadSource::Derived {
///         origin: ThreadWork::with_items(256),
///         items_per_thread: 1,
///     },
///     dp: None,
/// });
/// let report = sim.run().report;
/// assert!(report.total_cycles > 0);
/// assert_eq!(report.items_total(), 256);
/// ```
pub struct Simulation {
    cfg: GpuConfig,
    events: SchedQueue<Ev>,
    gmu: Gmu,
    smxs: Vec<SmxShard>,
    mem: MemSystem,
    backend: SimBackend,
    /// Lookahead window policy for the parallel backend.
    window: SimWindow,
    /// Par-only: min-heap over the times of scheduled non-anchor global
    /// events (primed at parallel-loop entry, fed by `push_global`); the
    /// minimum upper-bounds when the next such event can pop and mutate
    /// an arbitrary shard.
    ev_horizon: EventHorizon,
    /// Par-only: min-heap of warp finish-pop lower bounds. A finish can
    /// reach another shard only through the dispatch → CTA-start chain,
    /// which costs at least `cta_dispatch_latency` cycles past the pop
    /// — so `guard.min() + cta_dispatch_latency − 1` bounds the horizon
    /// (DESIGN.md §12).
    guard: EventHorizon,
    /// True while the parallel loop runs: `push_global`,
    /// `schedule_wakeup`, and `on_cta_start` feed the two heaps above.
    par_tracking: bool,
    /// Effective-window histogram of this run (empty under `Seq`).
    win_stats: WinStats,
    kernels: Vec<KernelRt>,
    controller: Box<dyn LaunchController>,
    now: Cycle,
    live_kernels: u32,
    next_stream: u32,
    warp_seq: u64,
    rr_smx: usize,
    dispatch_at: Option<Cycle>,
    /// Child kernels whose launch was approved but which have not yet
    /// arrived at the GMU (they already occupy pending-pool slots — the
    /// API allocates the slot when it is invoked).
    inflight_launches: u32,
    trace: Option<Trace>,
    metrics_level: MetricsLevel,
    /// Windowed telemetry series; allocated only at
    /// [`MetricsLevel::Timeseries`], so every other level pays one
    /// `Option` check per sample/decision and nothing else.
    timeseries: Option<Box<SimSeries>>,
    // --- statistics ---
    occupancy: TimeWeighted,
    parent_ctas_running: u32,
    child_ctas_running: u32,
    timeline: Vec<(u64, TimelineSample)>,
    child_cta_exec: Vec<u64>,
    child_launch_times: Vec<u64>,
    queue_lat_sum: u128,
    queue_lat_count: u64,
    items_inline: u64,
    items_child: u64,
    launch_requests: u64,
    inlined_requests: u64,
    redistributed_requests: u64,
    aggregated_launches: u64,
    aggregated_cta_count: u64,
    child_ctas_executed: u64,
    child_kernels: u64,
    events_global: u64,
    dead_wakeups: u64,
    peak_queue_depth: u64,
    peak_local_backlog: u64,
    /// Wall-clock duration of `run_to_completion` (host time, reporting
    /// only — never feeds back into simulated behavior).
    wall_ms: f64,
    /// Recycled `outstanding_mem` buffers from finished warps, so the
    /// steady-state warp churn performs no per-warp allocations. Bounded
    /// by [`POOL_CAP`] like every free-list here.
    warp_mem_pool: Vec<std::collections::VecDeque<Cycle>>,
    /// Recycled CTA lane tables (see [`CtaRt::lanes`]); bounded by
    /// [`POOL_CAP`].
    lane_pool: Vec<Vec<ThreadWork>>,
    /// Host-side self-profiler (a no-op ZST unless the `profile` cargo
    /// feature is on; runtime-disabled unless the builder asked for it).
    prof: Profiler,
    /// Interned work classes and DP specs (see [`SpecTable`]); kernels
    /// hold plain ids into this table.
    specs: SpecTable,
    /// Reused across dispatch rounds for the GMU's candidate list.
    dispatch_buf: Vec<KernelId>,
    /// Reused across warp starts for the per-lane launch candidates.
    cand_buf: Vec<(u32, ThreadWork)>,
    /// Arm a snapshot capture once all events with time ≤ this cycle
    /// have been processed (see [`SimulationBuilder::snapshot_at`]).
    snapshot_at: Option<Cycle>,
    /// User metadata echoed into the snapshot header's `meta` member.
    snapshot_meta: Option<Json>,
    /// The captured container, moved into [`RunOutcome::snapshot`].
    snapshot: Option<Vec<u8>>,
    /// Controller decide/observe log, recorded only while a snapshot is
    /// armed; serialized so resume can rebuild the (opaque) controller
    /// by replaying the exact sequence it saw.
    replay: Option<Vec<ReplayEntry>>,
    /// True for simulations built by
    /// [`SimulationBuilder::build_resumed`]: skips the time-zero
    /// bootstrap (`Ev::Sample`) that the restored queue already carries.
    resumed: bool,
    /// Live per-tick observation callback (see
    /// [`SimulationBuilder::watch`]); read-only, byte-invisible.
    watch: Option<WatchHook>,
}

impl Simulation {
    /// Starts a [`SimulationBuilder`] for `cfg`.
    pub fn builder(cfg: GpuConfig) -> SimulationBuilder {
        SimulationBuilder::new(cfg)
    }

    /// Creates a simulator for `cfg` driven by `controller`; reached only
    /// through [`SimulationBuilder::build`], which validates upfront.
    fn new(cfg: GpuConfig, controller: Box<dyn LaunchController>, queue: QueueBackend) -> Self {
        cfg.validate().expect("invalid GPU configuration");
        let smxs = (0..cfg.smx_count)
            .map(|i| SmxShard::new(SmxId(i as u8), &cfg))
            .collect();
        let mem = MemSystem::new(&cfg.mem);
        let gmu = Gmu::new(cfg.num_hwqs);
        Simulation {
            cfg,
            events: SchedQueue::new(queue),
            gmu,
            smxs,
            mem,
            backend: SimBackend::Seq,
            window: SimWindow::default(),
            ev_horizon: EventHorizon::new(),
            guard: EventHorizon::new(),
            par_tracking: false,
            win_stats: WinStats::default(),
            kernels: Vec::new(),
            controller,
            now: Cycle::ZERO,
            live_kernels: 0,
            next_stream: 0,
            warp_seq: 0,
            rr_smx: 0,
            dispatch_at: None,
            inflight_launches: 0,
            trace: None,
            metrics_level: MetricsLevel::default(),
            timeseries: None,
            occupancy: TimeWeighted::new(),
            parent_ctas_running: 0,
            child_ctas_running: 0,
            timeline: Vec::new(),
            child_cta_exec: Vec::new(),
            child_launch_times: Vec::new(),
            queue_lat_sum: 0,
            queue_lat_count: 0,
            items_inline: 0,
            items_child: 0,
            launch_requests: 0,
            inlined_requests: 0,
            redistributed_requests: 0,
            aggregated_launches: 0,
            aggregated_cta_count: 0,
            child_ctas_executed: 0,
            child_kernels: 0,
            events_global: 0,
            dead_wakeups: 0,
            peak_queue_depth: 0,
            peak_local_backlog: 0,
            wall_ms: 0.0,
            warp_mem_pool: Vec::new(),
            lane_pool: Vec::new(),
            prof: Profiler::new(ph::NAMES),
            specs: SpecTable::default(),
            dispatch_buf: Vec::new(),
            cand_buf: Vec::new(),
            snapshot_at: None,
            snapshot_meta: None,
            snapshot: None,
            replay: None,
            resumed: false,
            watch: None,
        }
    }

    #[inline]
    fn trace(&mut self, ev: impl FnOnce() -> TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(ev());
        }
    }

    /// Enqueues a host-side kernel launch at time zero on the default
    /// stream: successive host launches serialize, exactly like CUDA's
    /// NULL stream (the level-synchronous BFS driver depends on this).
    /// Use [`launch_host_on_stream`](Simulation::launch_host_on_stream)
    /// for concurrent host kernels.
    pub fn launch_host(&mut self, desc: KernelDesc) {
        self.launch_host_on_stream(desc, Self::DEFAULT_STREAM);
    }

    /// The host-side default (NULL) stream.
    pub const DEFAULT_STREAM: StreamId = StreamId(0);

    /// Enqueues a host-side kernel launch at time zero on an explicit
    /// stream; kernels on distinct streams may execute concurrently.
    ///
    /// # Panics
    ///
    /// Panics if the description fails [`KernelDesc::validate`].
    pub fn launch_host_on_stream(&mut self, desc: KernelDesc, stream: StreamId) {
        desc.validate().expect("invalid kernel description");
        let id = KernelId(self.kernels.len() as u32);
        self.next_stream = self.next_stream.max(stream.0 + 1);
        let total_threads = desc.thread_count();
        let grid = desc.grid_ctas();
        // Intern the class and the DP spec chain once, here at
        // registration time; the launch hot path then deals in copyable
        // ids instead of cloning `Arc`s per child kernel.
        let class = self.specs.intern_class(&desc.class);
        let dp = desc.dp.as_ref().map(|d| self.specs.intern_dp(d));
        self.kernels.push(KernelRt {
            id,
            name: desc.name,
            kind: KernelKind::Host,
            parent: None,
            depth: 0,
            stream,
            origin_smx: None,
            cta_threads: desc.cta_threads,
            regs_per_thread: desc.regs_per_thread,
            shmem_per_cta: desc.shmem_per_cta,
            class,
            dp,
            dir: CtaDirectory::Uniform {
                source: desc.source,
                total_threads,
            },
            grid_ctas: grid,
            dispatchable_ctas: 0,
            next_cta: 0,
            live_ctas: 0,
            live_children: 0,
            agg_children: Vec::new(),
            own_done: false,
            fully_done: false,
            created_at: Cycle::ZERO,
            arrived_at: None,
            first_dispatch: None,
            own_done_at: None,
        });
        self.live_kernels += 1;
        self.trace(|| TraceEvent::KernelCreated {
            at: Cycle::ZERO,
            kernel: id,
            parent: None,
        });
        self.push_global(Cycle::ZERO, Ev::KernelArrive(id));
    }

    /// Runs to completion and returns the [`RunOutcome`]: the report,
    /// the trace (if the builder enabled one), the controller, and the
    /// JSON [`RunArtifact`] (unless metrics were
    /// [`Off`](MetricsLevel::Off)).
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds `cfg.max_cycles` (a stall/runaway
    /// guard) or deadlocks with live kernels and no pending events — both
    /// indicate an internal invariant violation or a malformed workload.
    pub fn run(mut self) -> RunOutcome {
        self.run_to_completion();
        let profile = self.prof.report();
        let report = self.build_report();
        let artifact = if self.metrics_level.enabled() {
            Some(self.build_artifact(&report))
        } else {
            None
        };
        RunOutcome {
            report,
            trace: self.trace,
            controller: self.controller,
            artifact,
            profile,
            snapshot: self.snapshot,
            win: self.win_stats,
        }
    }

    fn run_to_completion(&mut self) {
        let started = std::time::Instant::now();
        if !self.resumed {
            self.push_global(Cycle::ZERO, Ev::Sample);
        }
        // The whole loop runs under the outer "sched" phase; `handle`
        // nests the per-event phases inside it, so "sched" is left
        // holding exactly the queue-pop and loop overhead and the
        // phases sum to the loop's wall time (coverage ≈ 1).
        self.prof.enter(ph::SCHED);
        // While a snapshot is armed the run stays on the sequential
        // loop — both backends produce byte-identical state (DESIGN.md
        // §12), so this is invisible in every artifact, and it keeps
        // the capture point well-defined (between whole events rather
        // than mid-batch). The requested backend takes over right after
        // the capture.
        let finished = if self.snapshot_at.is_some() {
            self.run_seq_to_snapshot()
        } else {
            false
        };
        if !finished {
            match self.backend {
                SimBackend::Seq => self.run_loop_seq(),
                SimBackend::Par(jobs) => self.run_loop_par(jobs),
            }
        }
        self.prof.exit();
        assert!(
            self.live_kernels == 0,
            "simulation stalled with {} live kernels and no events",
            self.live_kernels
        );
        self.occupancy.finish(self.now);
        self.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    }

    /// The sequential loop with a snapshot trigger: once every event at
    /// time ≤ `snapshot_at` has been handled, captures the container and
    /// disarms. Returns `true` when the run finished *before* reaching
    /// the snapshot cycle (no snapshot is captured then — the caller
    /// gets a complete run and `RunOutcome::snapshot` stays `None`).
    fn run_seq_to_snapshot(&mut self) -> bool {
        let at = self.snapshot_at.expect("armed");
        loop {
            self.peak_queue_depth = self.peak_queue_depth.max(self.events.len() as u64);
            match self.events.peek_time() {
                Some(t) if t > at => {
                    self.capture_snapshot();
                    self.snapshot_at = None;
                    self.replay = None;
                    return false;
                }
                Some(_) => {}
                None => return true,
            }
            let (t, ev) = self.events.pop().expect("peeked event");
            assert!(
                t.as_u64() <= self.cfg.max_cycles,
                "simulation exceeded max_cycles={} (stall or runaway workload)",
                self.cfg.max_cycles
            );
            debug_assert!(t >= self.now, "event time went backwards");
            self.now = t;
            self.events_global += 1;
            self.handle(t, ev);
            if self.live_kernels == 0 {
                return true;
            }
        }
    }

    fn run_loop_seq(&mut self) {
        loop {
            self.peak_queue_depth = self.peak_queue_depth.max(self.events.len() as u64);
            let Some((t, ev)) = self.events.pop() else { break };
            assert!(
                t.as_u64() <= self.cfg.max_cycles,
                "simulation exceeded max_cycles={} (stall or runaway workload)",
                self.cfg.max_cycles
            );
            debug_assert!(t >= self.now, "event time went backwards");
            self.now = t;
            self.events_global += 1;
            self.handle(t, ev);
            if self.live_kernels == 0 {
                break;
            }
        }
    }

    /// The parallel event loop. Identical to [`run_loop_seq`] at every
    /// observable byte, but anchor handling is split in two. When an
    /// anchor pops with no recorded work pending, the batch of same-cycle
    /// anchored shards is shipped to the worker pool to run a multi-cycle
    /// *lookahead span* ([`SmxShard::local_tick_span`]) bounded by
    /// [`span_horizon`](Self::span_horizon); each recorded tick is then
    /// replayed when its own anchor event pops — the exact global queue
    /// position where the sequential backend would have handled it (see
    /// DESIGN.md §12 for the safety argument).
    ///
    /// Anchors for distinct SMXs are the only event kind whose handlers
    /// touch disjoint state up to the merge; everything else (GMU,
    /// dispatch, CTA starts, samples) stays on this thread.
    fn run_loop_par(&mut self, jobs: usize) {
        // Workers read frozen snapshots of the config and spec table
        // (interning only happens at host-launch registration, before
        // `run`), so the closure borrows nothing from `self`.
        let cfg2 = self.cfg.clone();
        let specs2 = self.specs.clone();
        let n = self.smxs.len();
        // Placeholder shards swapped into `self.smxs` while the real
        // shard is out on a worker; recycled for the whole run.
        let mut spares: Vec<SmxShard> = (0..n).map(|_| SmxShard::new(SmxId(0), &self.cfg)).collect();
        let mut batch: Vec<SmxId> = Vec::with_capacity(n);
        let mut ship: Vec<SmxId> = Vec::with_capacity(n);
        debug_assert!(
            self.snapshot_at.is_none(),
            "snapshots are captured on the sequential loop before the backend takes over"
        );
        // More workers than cores never helps compute-bound spans; on a
        // single-core host the pool degrades to its inline serial mode,
        // which keeps the span/merge protocol (and its byte-identical
        // artifacts) while dropping every thread round-trip.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let jobs = jobs.min(cores);
        self.prime_par_tracking();
        Pool::scope(
            jobs,
            n,
            move |(mut shard, start, horizon): (SmxShard, Cycle, Cycle)| {
                shard.local_tick_span(start, horizon, &cfg2, &specs2);
                shard
            },
            |pool| loop {
                let mut level = self.events.len() as u64;
                self.peak_queue_depth = self.peak_queue_depth.max(level);
                let Some((t, ev)) = self.events.pop() else { break };
                assert!(
                    t.as_u64() <= self.cfg.max_cycles,
                    "simulation exceeded max_cycles={} (stall or runaway workload)",
                    self.cfg.max_cycles
                );
                debug_assert!(t >= self.now, "event time went backwards");
                self.now = t;
                self.events_global += 1;
                let Ev::SmxWork(s0) = ev else {
                    self.handle(t, ev);
                    if self.live_kernels == 0 {
                        break;
                    }
                    continue;
                };
                if self.smxs[s0.index()].has_recorded(t) {
                    // This anchor's tick already ran inside a lookahead
                    // span: replay it here, at its sequential position.
                    self.prof.enter(ph::MERGE);
                    self.merge_recorded_tick(t, s0.index());
                    self.prof.exit();
                    if self.live_kernels == 0 {
                        break;
                    }
                    continue;
                }
                // Batch formation: pop further *same-cycle* events while
                // they are SmxWork anchors; the first other-kind event is
                // held and replayed after the batch (pop order preserved
                // — same-cycle pushes enqueue FIFO behind it either way).
                batch.clear();
                batch.push(s0);
                let mut held: Option<Ev> = None;
                while self.events.peek_time() == Some(t) {
                    let (_, e2) = self.events.pop().expect("peeked event");
                    self.events_global += 1;
                    match e2 {
                        Ev::SmxWork(s) => batch.push(s),
                        other => {
                            held = Some(other);
                            break;
                        }
                    }
                }
                // A held same-cycle event may mutate any shard the moment
                // it runs; spans must not look past this cycle then.
                let horizon = if held.is_some() { t } else { self.span_horizon(t) };
                if batch.len() == 1 && held.is_none() && horizon == t {
                    // Degenerate window: the sequential fast path.
                    self.win_stats.record(1);
                    self.handle(t, Ev::SmxWork(s0));
                    if self.live_kernels == 0 {
                        break;
                    }
                    continue;
                }
                self.prof.enter(ph::WIN);
                // Local phase: swap each anchored shard without recorded
                // work out against a spare (zero allocation) and run its
                // span on the pool. Anchors are unique per SMX per cycle,
                // so batch entries are distinct shards. Members that
                // already hold a recorded tick for `t` (from an earlier
                // span) skip the pool and merge below.
                ship.clear();
                ship.extend(
                    batch
                        .iter()
                        .copied()
                        .filter(|s| !self.smxs[s.index()].has_recorded(t)),
                );
                if jobs <= 1 || ship.len() == 1 {
                    // Nothing can overlap: a lone shard would serialize on
                    // the collect anyway, and a serial pool runs tasks on
                    // this thread regardless. Run the spans in place —
                    // same recording and replay, none of the channel or
                    // spare-swap traffic.
                    for &s in &ship {
                        let si = s.index();
                        self.smxs[si].local_tick_span(t, horizon, &self.cfg, &self.specs);
                        self.win_stats.record(self.smxs[si].ticks.len() as u64);
                    }
                } else {
                    {
                        let smxs = &mut self.smxs;
                        let spares = &mut spares;
                        pool.send_batch(ship.iter().map(|&s| {
                            let spare = spares.pop().expect("spare shard available");
                            (std::mem::replace(&mut smxs[s.index()], spare), t, horizon)
                        }));
                    }
                    for _ in 0..ship.len() {
                        let shard = pool.recv();
                        self.win_stats.record(shard.ticks.len() as u64);
                        let si = shard.id.index();
                        spares.push(std::mem::replace(&mut self.smxs[si], shard));
                    }
                }
                self.prof.exit();
                // Merge phase, in pop order: each batch member's tick at
                // `t` is the front record of its span. `peak_queue_depth`
                // samples are reconstructed retroactively: the sequential
                // loop samples the queue before each pop, after the
                // previous handler's pushes.
                let mut prev_delta = 0u64;
                for (j, &s) in batch.iter().enumerate() {
                    if j > 0 {
                        level = level - 1 + prev_delta;
                        self.peak_queue_depth = self.peak_queue_depth.max(level);
                    }
                    let before = self.events.len() as u64;
                    self.prof.enter(ph::MERGE);
                    self.merge_recorded_tick(t, s.index());
                    self.prof.exit();
                    prev_delta = self.events.len() as u64 - before;
                }
                if let Some(hev) = held {
                    if self.live_kernels == 0 {
                        // The sequential loop would have stopped before
                        // popping this event; un-pop it.
                        self.events_global -= 1;
                        break;
                    }
                    level = level - 1 + prev_delta;
                    self.peak_queue_depth = self.peak_queue_depth.max(level);
                    self.handle(t, hev);
                }
                if self.live_kernels == 0 {
                    break;
                }
            },
        );
        self.par_tracking = false;
        debug_assert!(
            self.smxs.iter().all(|s| s.merge_exhausted()),
            "run terminated with recorded span ticks pending"
        );
    }

    /// Arms the lookahead heaps from live state at parallel-loop entry
    /// (the loop may start mid-run, e.g. after a snapshot prefix): every
    /// queued non-anchor event is tracked, and every scheduled or ready
    /// warp gets a finish-pop lower bound.
    fn prime_par_tracking(&mut self) {
        self.par_tracking = true;
        self.ev_horizon.clear();
        self.guard.clear();
        for (at, ev) in self.events.snapshot_entries() {
            if !matches!(ev, Ev::SmxWork(_)) {
                self.ev_horizon.note(Cycle(at));
            }
        }
        let now = self.now;
        for si in 0..self.smxs.len() {
            for (at, slot) in self.smxs[si].local.snapshot_entries() {
                let w = self.smxs[si].warp(slot);
                let left = w.rounds_total.saturating_sub(w.rounds_done) as u64;
                self.guard.note(Cycle(at) + left);
            }
            self.note_ready_guards(si, now);
        }
    }

    /// Pushes a finish-pop lower bound for every currently-ready warp of
    /// SMX `si`: it can issue no earlier than `base` and needs one cycle
    /// per remaining round before its finish wakeup can pop. Ready warps
    /// re-arm an anchor every cycle, so these keys are refreshed at every
    /// tick tail a warp survives — which is what keeps pruning strictly
    /// below the current cycle sound.
    fn note_ready_guards(&mut self, si: usize, base: Cycle) {
        let mut guard = std::mem::take(&mut self.guard);
        let smx = &self.smxs[si].smx;
        smx.for_each_ready(|slot| {
            let w = smx.warp(slot);
            let left = w.rounds_total.saturating_sub(w.rounds_done) as u64;
            guard.note(base + left);
        });
        self.guard = guard;
    }

    /// The widest provably-safe lookahead horizon for spans dispatched at
    /// `t`: no cross-shard mutation can land on any SMX within `[t, H]`,
    /// so shards may run their anchor ticks locally through `H`. Three
    /// bounds, each required (DESIGN.md §12): the window-policy cap; the
    /// earliest scheduled non-anchor global event (its handler may touch
    /// any shard the cycle it pops); and the guard heap of warp
    /// finish-pop lower bounds (a finish cascades into another shard no
    /// sooner than `cta_dispatch_latency` cycles after the pop).
    fn span_horizon(&mut self, t: Cycle) -> Cycle {
        let cap = match self.window {
            SimWindow::Fixed(n) => n.max(1) - 1,
            SimWindow::Auto => AUTO_WINDOW_CAP - 1,
        };
        if cap == 0 {
            return t;
        }
        let mut h = t + cap;
        // Every event ≤ t has popped by now (the batch drained cycle t),
        // so stale tracker entries go and the rest are live and exact.
        self.ev_horizon.prune_through(t);
        if let Some(m) = self.ev_horizon.min() {
            debug_assert!(m > t, "tracked global event survived its pop");
            h = h.min(Cycle(m.as_u64() - 1));
        }
        // Guard keys equal to `t` stay: a finish popping this very cycle
        // still bounds the horizon. Only strictly-past keys are stale.
        self.guard.prune_below(t);
        if let Some(k) = self.guard.min() {
            let lat = self.cfg.cta_dispatch_latency;
            h = h.min(Cycle((k.as_u64() + lat).saturating_sub(1)));
        }
        h.max(t)
    }

    /// Replays one recorded span tick of SMX `si` at its global pop
    /// position: fold the tick's counters, apply its ops in sequential
    /// order, feed its recorded guard keys, then run (or materialize)
    /// the anchor tail. After the span's last record, the arenas reset
    /// in place so the shard's next span allocates nothing.
    fn merge_recorded_tick(&mut self, now: Cycle, si: usize) {
        let rec = self.smxs[si].ticks[self.smxs[si].ticks_next];
        debug_assert!(rec.cycle == now, "recorded tick out of step with its anchor");
        let (ops_start, keys_start) = if self.smxs[si].ticks_next == 0 {
            (0, 0)
        } else {
            let prev = self.smxs[si].ticks[self.smxs[si].ticks_next - 1];
            (prev.ops_end as usize, prev.keys_end as usize)
        };
        self.smxs[si].events_local += rec.drained as u64;
        self.peak_local_backlog = self.peak_local_backlog.max(rec.backlog_max);
        let ops = std::mem::take(&mut self.smxs[si].ops);
        let misses = std::mem::take(&mut self.smxs[si].miss_lines);
        let keys = std::mem::take(&mut self.smxs[si].guard_keys);
        for &op in &ops[ops_start..rec.ops_end as usize] {
            match op {
                TickOp::Finish { slot } => self.finish_warp(now, si, slot),
                TickOp::Start { slot } => self.start_warp(now, si, slot),
                TickOp::Round(r) => self.merge_round(now, si, r, &misses),
            }
        }
        for &k in &keys[keys_start..rec.keys_end as usize] {
            self.guard.note(k);
        }
        if rec.tail_applied {
            // The anchor tail already ran inside the shard; only its won
            // global pushes materialize here, in the sequential order
            // (`now + 1` before the wakeup relay).
            if let Some(at) = rec.anchor_after {
                self.events.push(at, Ev::SmxWork(SmxId(si as u8)));
            }
            if let Some(at) = rec.anchor_relay {
                self.events.push(at, Ev::SmxWork(SmxId(si as u8)));
            }
            if rec.dead_wakeup {
                self.dead_wakeups += 1;
            }
        } else {
            // Stop tick (the span's last): its ops above mutate live
            // global state, so run the real `on_smx_work` tail.
            if self.smxs[si].has_ready() {
                self.ensure_anchor(si, now + 1);
                self.note_ready_guards(si, now + 1);
            }
            if let Some(next) = self.smxs[si].local.peek_time() {
                debug_assert!(next > now, "undrained wakeup at the anchor cycle");
                self.ensure_anchor(si, next);
            } else if rec.idle {
                self.dead_wakeups += 1;
            }
        }
        let shard = &mut self.smxs[si];
        shard.ops = ops;
        shard.miss_lines = misses;
        shard.guard_keys = keys;
        shard.ticks_next += 1;
        if shard.ticks_next >= shard.ticks.len() {
            // Span fully merged: reset the arenas, retaining capacity.
            shard.ticks.clear();
            shard.ticks_next = 0;
            shard.ops.clear();
            shard.miss_lines.clear();
            shard.guard_keys.clear();
        }
    }

    /// The merge half of one recorded round: globally-serviced memory
    /// and stats, then the warp tail — fully replayed for deferred
    /// tails, merely reconciled for applied ones (items accounting,
    /// sentinel replacement, and the recorded pushes, in the order the
    /// sequential `finish_round` would have produced them).
    fn merge_round(&mut self, now: Cycle, si: usize, r: RoundOut, misses: &[u64]) {
        self.prof.enter(ph::ROUND);
        self.prof.enter(ph::CACHE);
        let mem_done = if r.lines == 0 {
            now
        } else {
            let miss = &misses[r.miss_off as usize..(r.miss_off + r.miss_len) as usize];
            self.mem.service_read(
                now,
                &mut self.smxs[si].l1,
                r.lines as u64,
                r.hits,
                miss,
                &mut self.prof,
            )
        };
        if let Some(line) = r.write_line {
            self.mem.warp_write(now, line, &mut self.prof);
        }
        self.prof.exit(); // cache
        match r.tail {
            RoundTail::Deferred => {
                self.finish_round(now, si, r.slot, r.compute, r.active, r.is_child, mem_done);
            }
            RoundTail::Applied { guard_key, anchor_push, sentinel } => {
                if r.is_child {
                    self.items_child += r.active as u64;
                } else {
                    self.items_inline += r.active as u64;
                }
                if sentinel {
                    debug_assert!(mem_done > now, "sentinel stood in for a no-push round");
                    let w = self.smxs[si].warp_mut(r.slot);
                    let cell = w
                        .outstanding_mem
                        .iter_mut()
                        .find(|c| **c == SENTINEL)
                        .expect("deferred miss entry to replace");
                    *cell = mem_done;
                }
                if self.par_tracking {
                    self.guard.note(guard_key);
                }
                if let Some(at) = anchor_push {
                    self.events.push(at, Ev::SmxWork(SmxId(si as u8)));
                }
            }
        }
        self.prof.exit(); // round
    }

    // ----- snapshot / resume --------------------------------------------

    /// Serializes the full deterministic state into a container image
    /// (see [`crate::snap`]) and parks it for [`RunOutcome::snapshot`].
    /// Runs between events, so every transient buffer is empty.
    fn capture_snapshot(&mut self) {
        let mut w = ByteWriter::new();
        self.encode_state(&mut w);
        let state = w.into_bytes();
        let mut members: Vec<(&str, Json)> = vec![
            ("cycle", Json::U64(self.snapshot_at.expect("armed").as_u64())),
            ("now", Json::U64(self.now.as_u64())),
            ("controller", Json::str(self.controller.name())),
            ("metrics", Json::str(self.metrics_level.as_str())),
            // No decisions yet ⇒ no child work ⇒ the ramp is identical
            // under every launch policy, so a pristine snapshot may be
            // resumed with a *different* controller (warm-start forks).
            ("pristine", Json::Bool(self.launch_requests == 0)),
            (
                "config_fnv",
                Json::U64(crate::config::canonical_json_hash(&self.cfg.to_json())),
            ),
        ];
        if let Some(meta) = self.snapshot_meta.take() {
            members.push(("meta", meta));
        }
        let job = Json::obj(members);
        self.snapshot = Some(crate::snap::write_snapshot(&job, &state));
    }

    /// Writes every field of dynamic simulation state, in declaration
    /// order. The config, the backend choice, tracing, profiling, and
    /// the buffer free-lists are deliberately excluded: the first two
    /// are rebuilt by the resuming builder (and never affect artifact
    /// bytes), the rest are observability/allocation concerns that leave
    /// no trace in results.
    fn encode_state(&mut self, w: &mut ByteWriter) {
        w.put_u64(self.now.as_u64());
        w.put_u32(self.live_kernels);
        w.put_u32(self.next_stream);
        w.put_u64(self.warp_seq);
        w.put_u64(self.rr_smx as u64);
        put_opt_cycle(w, self.dispatch_at);
        w.put_u32(self.inflight_launches);
        // Global event queue, in pop order (backend-agnostic: a resume
        // may restore a wheel snapshot into a heap and vice versa).
        w.put_u64(self.events.total_pushed());
        let entries = self.events.snapshot_entries();
        w.put_len(entries.len());
        for (t, ev) in entries {
            w.put_u64(t);
            put_ev(w, ev);
        }
        self.gmu.encode_state(w);
        w.put_len(self.smxs.len());
        for shard in &mut self.smxs {
            shard.encode_state(w);
        }
        self.mem.encode_state(w);
        w.put_len(self.kernels.len());
        for k in &self.kernels {
            k.encode_state(w);
        }
        self.specs.encode_state(w);
        // Statistics.
        self.occupancy.encode_state(w);
        w.put_u32(self.parent_ctas_running);
        w.put_u32(self.child_ctas_running);
        w.put_len(self.timeline.len());
        for &(t, s) in &self.timeline {
            w.put_u64(t);
            w.put_u32(s.parent_ctas);
            w.put_u32(s.child_ctas);
            w.put_f64(s.utilization);
            w.put_u32(s.concurrent_kernels);
            w.put_f64(s.peak_smx_utilization);
        }
        w.put_len(self.child_cta_exec.len());
        for &v in &self.child_cta_exec {
            w.put_u64(v);
        }
        w.put_len(self.child_launch_times.len());
        for &v in &self.child_launch_times {
            w.put_u64(v);
        }
        w.put_u128(self.queue_lat_sum);
        w.put_u64(self.queue_lat_count);
        w.put_u64(self.items_inline);
        w.put_u64(self.items_child);
        w.put_u64(self.launch_requests);
        w.put_u64(self.inlined_requests);
        w.put_u64(self.redistributed_requests);
        w.put_u64(self.aggregated_launches);
        w.put_u64(self.aggregated_cta_count);
        w.put_u64(self.child_ctas_executed);
        w.put_u64(self.child_kernels);
        w.put_u64(self.events_global);
        w.put_u64(self.dead_wakeups);
        w.put_u64(self.peak_queue_depth);
        w.put_u64(self.peak_local_backlog);
        match self.timeseries.as_deref() {
            Some(ts) => {
                w.put_bool(true);
                ts.encode_state(w);
            }
            None => w.put_bool(false),
        }
        // Controller decide/observe log since run start (the capture
        // point is mid-run, so the log covers exactly the ramp).
        let log = self.replay.as_deref().expect("armed snapshots keep a log");
        w.put_len(log.len());
        for e in log {
            put_replay(w, e);
        }
    }

    /// Restores [`encode_state`](Simulation::encode_state) bytes into a
    /// freshly built simulation and rebuilds the controller by replaying
    /// the recorded decide/observe log.
    ///
    /// # Errors
    ///
    /// Rejects a config that differs from the snapshot's, geometry
    /// mismatches in any component, dangling cross-references (kernel /
    /// class / DP / SMX ids), and — for a controller other than the one
    /// that took the snapshot — a non-pristine snapshot or one recorded
    /// at [`MetricsLevel::Timeseries`] (the monitored series make even a
    /// pristine timeseries artifact policy-dependent).
    fn decode_state(&mut self, job: &Json, state: &[u8]) -> Result<(), SnapError> {
        let want_cfg = job
            .get("config_fnv")
            .and_then(Json::as_u64)
            .ok_or(SnapError::Invalid("snapshot job lacks config_fnv"))?;
        if want_cfg != crate::config::canonical_json_hash(&self.cfg.to_json()) {
            return Err(SnapError::Invalid(
                "snapshot was taken under a different GPU configuration",
            ));
        }
        let snap_metrics = job
            .get("metrics")
            .and_then(Json::as_str)
            .and_then(MetricsLevel::parse)
            .ok_or(SnapError::Invalid("snapshot job lacks a metrics level"))?;
        if snap_metrics != self.metrics_level {
            return Err(SnapError::Invalid(
                "snapshot was recorded at a different metrics level",
            ));
        }
        let snap_controller = job
            .get("controller")
            .and_then(Json::as_str)
            .ok_or(SnapError::Invalid("snapshot job lacks a controller name"))?;
        let same_policy = snap_controller == self.controller.name();
        let pristine = job.get("pristine").and_then(Json::as_bool).unwrap_or(false);
        if !same_policy {
            if !pristine {
                return Err(SnapError::Invalid(
                    "cross-policy resume requires a pristine snapshot (no launch decisions yet)",
                ));
            }
            if self.metrics_level == MetricsLevel::Timeseries {
                return Err(SnapError::Invalid(
                    "cross-policy resume is unsupported at timeseries metrics \
                     (monitored series are policy-specific)",
                ));
            }
        }
        let mut reader = ByteReader::new(state);
        let r = &mut reader;
        self.now = Cycle(r.get_u64()?);
        self.live_kernels = r.get_u32()?;
        self.next_stream = r.get_u32()?;
        self.warp_seq = r.get_u64()?;
        self.rr_smx = r.get_u64()? as usize;
        self.dispatch_at = get_opt_cycle(r)?;
        self.inflight_launches = r.get_u32()?;
        let pushed = r.get_u64()?;
        let n = r.get_len()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let t = r.get_u64()?;
            if t < self.now.as_u64() {
                return Err(SnapError::Invalid("queued event before the snapshot cycle"));
            }
            entries.push((t, get_ev(r)?));
        }
        self.gmu.decode_state(r)?;
        let n = r.get_len()?;
        if n != self.smxs.len() {
            return Err(SnapError::Invalid("SMX count differs from configuration"));
        }
        for shard in &mut self.smxs {
            shard.decode_state(r)?;
        }
        self.mem.decode_state(r)?;
        let n = r.get_len()?;
        let mut kernels = Vec::with_capacity(n);
        for i in 0..n {
            let k = KernelRt::decode_state(r)?;
            if k.id.index() != i {
                return Err(SnapError::Invalid("kernel id does not match its slot"));
            }
            kernels.push(k);
        }
        self.kernels = kernels;
        self.specs = SpecTable::decode_state(r)?;
        for k in &self.kernels {
            let parent_ok = k.parent.is_none_or(|p| p.index() < self.kernels.len());
            let class_ok = (k.class.0 as usize) < self.specs.class_count();
            let dp_ok = k.dp.is_none_or(|d| (d.0 as usize) < self.specs.dp_count());
            let smx_ok = k.origin_smx.is_none_or(|s| s.index() < self.smxs.len());
            if !(parent_ok && class_ok && dp_ok && smx_ok) {
                return Err(SnapError::Invalid("kernel holds a dangling reference"));
            }
        }
        for &(_, ev) in &entries {
            let ok = match ev {
                Ev::KernelArrive(k) | Ev::HwqRelease(k) => k.index() < self.kernels.len(),
                Ev::AggArrive { kernel, .. } => kernel.index() < self.kernels.len(),
                Ev::CtaStart { smx, .. } | Ev::SmxWork(smx) => smx.index() < self.smxs.len(),
                Ev::Dispatch | Ev::Sample => true,
            };
            if !ok {
                return Err(SnapError::Invalid("queued event holds a dangling reference"));
            }
        }
        // Safe to restore now that every entry is known to be ≥ now: the
        // wheel backend requires its frontier ≤ every entry time.
        self.events =
            SchedQueue::restore_entries(self.events.backend(), self.now.as_u64(), pushed, entries);
        self.occupancy = TimeWeighted::decode_state(r)?;
        self.parent_ctas_running = r.get_u32()?;
        self.child_ctas_running = r.get_u32()?;
        let n = r.get_len()?;
        self.timeline = Vec::with_capacity(n);
        for _ in 0..n {
            let t = r.get_u64()?;
            self.timeline.push((
                t,
                TimelineSample {
                    parent_ctas: r.get_u32()?,
                    child_ctas: r.get_u32()?,
                    utilization: r.get_f64()?,
                    concurrent_kernels: r.get_u32()?,
                    peak_smx_utilization: r.get_f64()?,
                },
            ));
        }
        let n = r.get_len()?;
        self.child_cta_exec = Vec::with_capacity(n);
        for _ in 0..n {
            self.child_cta_exec.push(r.get_u64()?);
        }
        let n = r.get_len()?;
        self.child_launch_times = Vec::with_capacity(n);
        for _ in 0..n {
            self.child_launch_times.push(r.get_u64()?);
        }
        self.queue_lat_sum = r.get_u128()?;
        self.queue_lat_count = r.get_u64()?;
        self.items_inline = r.get_u64()?;
        self.items_child = r.get_u64()?;
        self.launch_requests = r.get_u64()?;
        self.inlined_requests = r.get_u64()?;
        self.redistributed_requests = r.get_u64()?;
        self.aggregated_launches = r.get_u64()?;
        self.aggregated_cta_count = r.get_u64()?;
        self.child_ctas_executed = r.get_u64()?;
        self.child_kernels = r.get_u64()?;
        self.events_global = r.get_u64()?;
        self.dead_wakeups = r.get_u64()?;
        self.peak_queue_depth = r.get_u64()?;
        self.peak_local_backlog = r.get_u64()?;
        let has_ts = r.get_bool()?;
        if has_ts != self.timeseries.is_some() {
            return Err(SnapError::Invalid(
                "timeseries presence differs from the builder's metrics level",
            ));
        }
        if let Some(ts) = self.timeseries.as_deref_mut() {
            ts.decode_state(r)?;
        }
        if !same_policy && self.launch_requests != 0 {
            return Err(SnapError::Invalid(
                "snapshot claims pristine but records launch decisions",
            ));
        }
        let n = r.get_len()?;
        let mut log = Vec::with_capacity(n);
        for _ in 0..n {
            log.push(get_replay(r)?);
        }
        reader.finish()?;
        if same_policy {
            // Rebuild the controller's internal state (thresholds, CCQS
            // predictions, …) by replaying the exact call sequence the
            // original controller saw during the ramp. Every replayed
            // decision must reproduce the recorded one — a divergence
            // means this controller is not the one that took the
            // snapshot (same name, different parameters).
            for e in &log {
                match e {
                    ReplayEntry::Decide(req, recorded) => {
                        if self.controller.decide(req) != *recorded {
                            return Err(SnapError::Invalid(
                                "controller replay diverged from the snapshot's decisions",
                            ));
                        }
                    }
                    ReplayEntry::Observe(ev) => self.controller.observe(ev),
                }
            }
        }
        // If this resumed run arms its own (later) snapshot, seed the new
        // log with the decoded one so the chained snapshot still carries
        // the full history from cycle zero.
        if let Some(replay) = self.replay.as_mut() {
            *replay = log;
        }
        Ok(())
    }

    /// Delivers `ev` to the controller, recording it first when a
    /// snapshot is armed (see [`ReplayEntry`]).
    fn observe_controller(&mut self, ev: ControllerEvent) {
        if let Some(log) = self.replay.as_mut() {
            log.push(ReplayEntry::Observe(ev));
        }
        self.controller.observe(&ev);
    }

    fn handle(&mut self, now: Cycle, ev: Ev) {
        let phase = match ev {
            Ev::KernelArrive(_) | Ev::AggArrive { .. } | Ev::HwqRelease(_) => ph::GMU,
            Ev::Dispatch => ph::DISPATCH,
            Ev::CtaStart { .. } => ph::CTA_START,
            Ev::SmxWork(_) => ph::WAKEUP,
            Ev::Sample => ph::SAMPLE,
        };
        self.prof.enter(phase);
        match ev {
            Ev::KernelArrive(k) => self.on_kernel_arrive(now, k),
            Ev::AggArrive { kernel, count } => {
                self.kernels[kernel.index()].dispatchable_ctas += count;
                self.schedule_dispatch(now);
            }
            Ev::Dispatch => {
                if self.dispatch_at == Some(now) {
                    self.dispatch_at = None;
                }
                self.do_dispatch(now);
            }
            Ev::CtaStart { smx, cta_slot } => self.on_cta_start(now, smx, cta_slot),
            Ev::SmxWork(smx) => self.on_smx_work(now, smx),
            Ev::HwqRelease(kernel) => {
                let stream = self.kernels[kernel.index()].stream;
                self.gmu.kernel_complete(kernel, stream);
                self.schedule_dispatch(now);
            }
            Ev::Sample => self.on_sample(now),
        }
        self.prof.exit();
    }

    // ----- kernel arrival & dispatch ------------------------------------

    fn on_kernel_arrive(&mut self, now: Cycle, id: KernelId) {
        let k = &mut self.kernels[id.index()];
        debug_assert!(k.arrived_at.is_none(), "kernel arrived twice");
        if matches!(k.kind, KernelKind::Child) {
            debug_assert!(self.inflight_launches > 0);
            self.inflight_launches -= 1;
        }
        k.arrived_at = Some(now);
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::KernelArrived { at: now, kernel: id });
        }
        if let CtaDirectory::Uniform { .. } = k.dir {
            k.dispatchable_ctas = k.grid_ctas;
        }
        let stream = k.stream;
        self.gmu.enqueue(id, stream);
        self.schedule_dispatch(now);
    }

    fn schedule_dispatch(&mut self, at: Cycle) {
        if self.dispatch_at.is_none_or(|t| t > at) {
            self.dispatch_at = Some(at);
            self.push_global(at, Ev::Dispatch);
        }
    }

    fn do_dispatch(&mut self, now: Cycle) {
        let mut candidates = std::mem::take(&mut self.dispatch_buf);
        self.gmu.dispatch_candidates_into(&mut candidates);
        loop {
            let mut placed_any = false;
            for &kid in &candidates {
                let k = &self.kernels[kid.index()];
                if k.next_cta >= k.dispatchable_ctas {
                    continue;
                }
                let threads = k.cta_threads;
                let regs = threads * k.regs_per_thread;
                let shmem = k.shmem_per_cta;
                let warps_needed = threads.div_ceil(self.cfg.warp_size);
                let n = self.smxs.len();
                let mut placed = None;
                // Locality-aware placement: try the parent's SMX first so
                // the child's reads hit the parent-warmed L1.
                if self.cfg.cta_placement == CtaPlacement::ParentAffinity {
                    if let Some(home) = k.origin_smx {
                        let s = home.index();
                        if self.smxs[s].can_fit(threads, regs, shmem, warps_needed) {
                            placed = Some(s);
                        }
                    }
                }
                if placed.is_none() {
                    for i in 0..n {
                        let s = (self.rr_smx + i) % n;
                        if self.smxs[s].can_fit(threads, regs, shmem, warps_needed) {
                            placed = Some(s);
                            break;
                        }
                    }
                    if let Some(s) = placed {
                        self.rr_smx = (s + 1) % n;
                    }
                }
                let Some(s) = placed else { continue };
                let k = &mut self.kernels[kid.index()];
                let cta_index = k.next_cta;
                k.next_cta += 1;
                k.live_ctas += 1;
                let is_child = k.is_child_work();
                if k.first_dispatch.is_none() {
                    k.first_dispatch = Some(now);
                    if matches!(k.kind, KernelKind::Child) {
                        let waited = now - k.arrived_at.expect("dispatched after arrival");
                        self.queue_lat_sum += waited.as_u64() as u128;
                        self.queue_lat_count += 1;
                    }
                }
                let cta_slot = self.smxs[s].reserve_cta(CtaRt {
                    kernel: kid,
                    cta_index,
                    live_warps: 0,
                    start_cycle: now,
                    lanes: Vec::new(),
                    threads,
                    regs,
                    shmem,
                    is_child_work: is_child,
                    cta_stream: None,
                });
                self.trace(|| TraceEvent::CtaDispatched {
                    at: now,
                    kernel: kid,
                    cta: cta_index,
                    smx: SmxId(s as u8),
                });
                self.push_global(
                    now + self.cfg.cta_dispatch_latency,
                    Ev::CtaStart {
                        smx: SmxId(s as u8),
                        cta_slot,
                    },
                );
                placed_any = true;
            }
            if !placed_any {
                break;
            }
        }
        self.dispatch_buf = candidates;
    }

    // ----- CTA & warp lifecycle -----------------------------------------

    fn on_cta_start(&mut self, now: Cycle, smx: SmxId, cta_slot: u32) {
        let si = smx.index();
        let (kernel_id, cta_index) = {
            let cta = self.smxs[si].cta(cta_slot);
            (cta.kernel, cta.cta_index)
        };
        // Fill the CTA's flat lane table (immutable borrow of kernels).
        // The work class and DP spec stay interned in the kernel table —
        // warps hold only `kernel_id` and look them up, so no Arc clones
        // happen here; the table buffer itself is recycled through
        // `lane_pool` and warps view `(lane_start, lane_count)` slices of
        // it, so the whole CTA start performs no steady-state allocation.
        let mut lanes = self.lane_pool.pop().unwrap_or_default();
        debug_assert!(lanes.is_empty());
        let (is_child, depth, class) = {
            let k = &self.kernels[kernel_id.index()];
            let ct = k.cta_threads(cta_index);
            let stride = self.specs.class(k.class).seq_bytes_per_item;
            lanes.extend((0..ct.count).map(|t| ct.source.thread(ct.base_tid + t, stride)));
            (k.is_child_work(), k.depth, k.class)
        };
        let ws = self.cfg.warp_size;
        let total = lanes.len() as u32;
        let warp_count = total.div_ceil(ws);
        {
            let cta = self.smxs[si].cta_mut(cta_slot);
            cta.start_cycle = now;
            cta.live_warps = warp_count;
            cta.is_child_work = is_child;
            cta.lanes = lanes;
        }
        let mut lane_start = 0;
        while lane_start < total {
            let lane_count = ws.min(total - lane_start);
            let age = self.warp_seq;
            self.warp_seq += 1;
            let outstanding_mem = self.warp_mem_pool.pop().unwrap_or_default();
            let slot = self.smxs[si].add_warp(WarpRt {
                cta_slot,
                kernel: kernel_id,
                class,
                is_child_work: is_child,
                depth,
                lane_start,
                lane_count,
                rounds_done: 0,
                rounds_total: 0,
                started: false,
                launches: 0,
                start_cycle: now,
                age,
                outstanding_mem,
            });
            self.smxs[si].mark_ready(slot);
            lane_start += lane_count;
        }
        self.occupancy.add(now, warp_count as i64);
        if is_child {
            self.child_ctas_running += 1;
            self.prof.enter(ph::CCQS);
            self.observe_controller(ControllerEvent::ChildCtaStart { now });
            self.prof.exit();
        } else {
            self.parent_ctas_running += 1;
        }
        if warp_count == 0 {
            // Degenerate empty CTA: complete immediately.
            self.finish_cta(now, si, cta_slot);
        } else {
            if self.par_tracking {
                // The fresh warps are ready but unstarted (no wheel entry
                // yet); their first finish wakeup cannot pop before
                // `now + 1` (the prologue charges at least one cycle).
                self.guard.note(now + 1);
            }
            self.ensure_anchor(si, now);
        }
    }

    /// Queues a non-anchor global event, keeping the parallel backend's
    /// event-horizon tracker in sync so future lookahead spans stop short
    /// of its cycle. Anchor (`SmxWork`) pushes bypass this: spans handle
    /// their own shard's anchors and other shards' anchors are harmless.
    fn push_global(&mut self, at: Cycle, ev: Ev) {
        debug_assert!(!matches!(ev, Ev::SmxWork(_)), "anchors are pushed directly");
        if self.par_tracking {
            self.ev_horizon.note(at);
        }
        self.events.push(at, ev);
    }

    /// Guarantees a global `SmxWork` anchor covers cycle `at` for SMX
    /// `si`: one is pushed only when `at` precedes every pending anchor.
    /// An anchor at `a ≤ at` already covers `at` — its handler re-anchors
    /// the SMX's next interesting cycle before returning — so the anchor
    /// set stays strictly decreasing on insert and never holds two events
    /// for the same cycle. This is what the old per-cycle `SmxTick` dedupe
    /// could not do: lowering `tick_at` leaked the superseded event into
    /// the queue as a dead pop.
    fn ensure_anchor(&mut self, si: usize, at: Cycle) {
        if self.smxs[si].try_anchor(at) {
            self.events.push(at, Ev::SmxWork(SmxId(si as u8)));
        }
    }

    /// Schedules a warp wakeup on the SMX's local wheel and makes sure a
    /// global anchor will fire by then.
    fn schedule_wakeup(&mut self, si: usize, at: Cycle, slot: u32) {
        if self.par_tracking {
            // Finish-pop lower bound: the wakeup fires at `at`, and each
            // remaining round costs at least one cycle before the warp's
            // finish wakeup can pop.
            let w = self.smxs[si].warp(slot);
            let left = w.rounds_total.saturating_sub(w.rounds_done) as u64;
            self.guard.note(at + left);
        }
        self.smxs[si].local.push(at, slot);
        let backlog = self.smxs[si].local.len() as u64;
        self.peak_local_backlog = self.peak_local_backlog.max(backlog);
        self.ensure_anchor(si, at);
    }

    /// The per-SMX anchor handler: drain local wakeups due this cycle,
    /// run the issue loop, then re-anchor the SMX's next interesting
    /// cycle (pending ready warps → `now + 1`, else the next local
    /// wakeup). An anchor always finds work or a future wakeup to relay:
    /// local entries drain only at their own cycle, and a drained ready
    /// set implies freshly scheduled wakeups — `dead_wakeups` counts the
    /// remaining "fired with nothing at all" case, which is structurally
    /// impossible and pinned at zero by the determinism tests.
    fn on_smx_work(&mut self, now: Cycle, smx: SmxId) {
        let si = smx.index();
        let anchors = &mut self.smxs[si].anchors;
        let pos = anchors
            .iter()
            .position(|&a| a == now)
            .expect("anchor fired without registration");
        anchors.swap_remove(pos);
        let mut idle = true;
        while self.smxs[si].local.peek_time() == Some(now) {
            let (_, slot) = self.smxs[si].local.pop().expect("peeked wakeup");
            self.smxs[si].events_local += 1;
            idle = false;
            let w = self.smxs[si].warp(slot);
            if w.started && w.rounds_done >= w.rounds_total {
                self.finish_warp(now, si, slot);
            } else {
                self.smxs[si].mark_ready(slot);
            }
        }
        if self.smxs[si].has_ready() {
            idle = false;
            for _ in 0..self.cfg.issue_width {
                let Some(slot) = self.smxs[si].select_ready() else {
                    break;
                };
                if self.smxs[si].warp(slot).started {
                    self.run_round(now, si, slot);
                } else {
                    self.start_warp(now, si, slot);
                }
            }
            if self.smxs[si].has_ready() {
                self.ensure_anchor(si, now + 1);
                if self.par_tracking {
                    // Refresh the ready-warp finish bounds: these keys are
                    // re-noted at every tick tail the warp stays ready,
                    // which is what keeps `span_horizon`'s strict pruning
                    // sound.
                    self.note_ready_guards(si, now + 1);
                }
            }
        }
        if let Some(next) = self.smxs[si].local.peek_time() {
            debug_assert!(next > now, "undrained wakeup at the anchor cycle");
            self.ensure_anchor(si, next);
        } else if idle {
            self.dead_wakeups += 1;
        }
    }

    /// First issue of a warp: make the launch decisions for every
    /// candidate lane, then charge the prologue (init + API calls).
    fn start_warp(&mut self, now: Cycle, si: usize, slot: u32) {
        self.prof.enter(ph::LAUNCH);
        let (kernel_id, cta_slot, depth) = {
            let w = self.smxs[si].warp(slot);
            (w.kernel, w.cta_slot, w.depth)
        };
        let dp_opt = self.kernels[kernel_id.index()].dp;
        let mut api_cost: u64 = 0;
        // CUDA bounds device-launch nesting; sites past the limit fail
        // at the API and fall back to in-thread execution.
        let dp_opt = dp_opt.filter(|_| depth < self.cfg.max_nesting_depth);
        if let Some(dp_id) = dp_opt {
            // All-`Copy` params: the per-lane loop below touches no `Arc`
            // refcount at all.
            let dp = self.specs.dp(dp_id);
            let min_items = dp.min_items.max(1);
            let mut candidates = std::mem::take(&mut self.cand_buf);
            candidates.clear();
            candidates.extend(
                self.smxs[si]
                    .warp_lanes(slot)
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.items >= min_items)
                    .map(|(i, l)| (i as u32, *l)),
            );
            for (lane_idx, work) in candidates.drain(..) {
                let lane_idx = lane_idx as usize;
                let (ctas, threads) = dp.child_geometry(work.items);
                let prior = self.smxs[si].warp(slot).launches;
                let req = ChildRequest {
                    now,
                    parent_kernel: kernel_id,
                    depth: depth + 1,
                    items: work.items,
                    child_ctas: ctas,
                    child_threads: threads,
                    child_warps_per_cta: dp.child_warps_per_cta(self.cfg.warp_size),
                    warp_prior_launches: prior,
                    default_threshold: dp.default_threshold,
                    pending_kernels: self.gmu.pending() + self.inflight_launches,
                };
                self.launch_requests += 1;
                self.prof.enter(ph::CCQS);
                let mut decision = self.controller.decide(&req);
                self.prof.exit();
                if let Some(log) = self.replay.as_mut() {
                    log.push(ReplayEntry::Decide(req.clone(), decision));
                }
                self.trace(|| TraceEvent::Decision {
                    at: now,
                    parent: kernel_id,
                    items: work.items,
                    decision,
                });
                let pool_occupancy = self.gmu.pending() + self.inflight_launches;
                if decision == LaunchDecision::Kernel && pool_occupancy >= self.cfg.pending_pool_cap {
                    // The device launch API returns "fail": compute inline
                    // (the §IV-B translated-source contract).
                    decision = LaunchDecision::Inline;
                }
                if let Some(ts) = self.timeseries.as_deref_mut() {
                    ts.decision(now.as_u64(), decision);
                }
                match decision {
                    LaunchDecision::Kernel => {
                        let x = {
                            let w = self.smxs[si].warp_mut(slot);
                            w.launches += 1;
                            w.launches as u64
                        };
                        self.smxs[si].warp_lanes_mut(slot)[lane_idx].items = 0;
                        api_cost += self.cfg.launch.api_call_cycles;
                        let stream = self.child_stream(si, cta_slot);
                        let child = self.create_child_kernel(
                            kernel_id,
                            dp,
                            work,
                            ctas,
                            threads,
                            stream,
                            now,
                            depth + 1,
                            Some(SmxId(si as u8)),
                        );
                        self.trace(|| TraceEvent::KernelCreated {
                            at: now,
                            kernel: child,
                            parent: Some(kernel_id),
                        });
                        let delay = self.cfg.launch.kernel_latency(x);
                        self.inflight_launches += 1;
                        self.push_global(now + delay, Ev::KernelArrive(child));
                        self.child_launch_times.push(now.as_u64());
                        self.child_kernels += 1;
                    }
                    LaunchDecision::Aggregated => {
                        self.smxs[si].warp_lanes_mut(slot)[lane_idx].items = 0;
                        api_cost += self.cfg.launch.api_call_cycles;
                        let agg = self.agg_kernel_for(kernel_id, dp, now);
                        let source = ThreadSource::Derived {
                            origin: work,
                            items_per_thread: dp.child_items_per_thread,
                        };
                        let k = &mut self.kernels[agg.index()];
                        if let CtaDirectory::Aggregated { entries } = &mut k.dir {
                            for local in 0..ctas {
                                entries.push(AggCta {
                                    source: source.clone(),
                                    local_cta: local,
                                    child_threads: threads,
                                });
                            }
                        }
                        k.grid_ctas += ctas;
                        self.push_global(
                            now + self.cfg.launch.dtbl_per_cta_cycles,
                            Ev::AggArrive { kernel: agg, count: ctas },
                        );
                        self.aggregated_launches += 1;
                        self.aggregated_cta_count += ctas as u64;
                    }
                    LaunchDecision::Redistribute => {
                        // Free-Launch: spread the items across the whole
                        // warp. Work is conserved exactly; the first
                        // `items % n` lanes take the remainder.
                        let lanes = self.smxs[si].warp_lanes_mut(slot);
                        let n = lanes.len() as u32;
                        let items = lanes[lane_idx].items;
                        lanes[lane_idx].items = 0;
                        let share = items / n;
                        let rem = (items % n) as usize;
                        for (i, lane) in lanes.iter_mut().enumerate() {
                            lane.items += share + u32::from(i < rem);
                        }
                        self.redistributed_requests += 1;
                    }
                    LaunchDecision::Inline => {
                        self.inlined_requests += 1;
                    }
                }
            }
            self.cand_buf = candidates;
        }
        let init_cycles = {
            let k = &self.kernels[kernel_id.index()];
            self.specs.class(k.class).init_cycles
        };
        let rounds_total = self.smxs[si]
            .warp_lanes(slot)
            .iter()
            .map(|l| l.items)
            .max()
            .unwrap_or(0);
        let w = self.smxs[si].warp_mut(slot);
        w.started = true;
        w.rounds_total = rounds_total;
        let busy = init_cycles as u64 + api_cost + 1;
        self.schedule_wakeup(si, now + busy, slot);
        self.prof.exit();
    }

    fn child_stream(&mut self, si: usize, cta_slot: u32) -> StreamId {
        match self.cfg.stream_policy {
            StreamPolicy::PerChildKernel => {
                let s = StreamId(self.next_stream);
                self.next_stream += 1;
                s
            }
            StreamPolicy::PerParentCta => {
                let next = &mut self.next_stream;
                let cta = self.smxs[si].cta_mut(cta_slot);
                *cta.cta_stream.get_or_insert_with(|| {
                    let s = StreamId(*next);
                    *next += 1;
                    s
                })
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn create_child_kernel(
        &mut self,
        parent: KernelId,
        dp: DpParams,
        work: ThreadWork,
        ctas: u32,
        threads: u32,
        stream: StreamId,
        now: Cycle,
        depth: u8,
        origin_smx: Option<SmxId>,
    ) -> KernelId {
        let id = KernelId(self.kernels.len() as u32);
        self.kernels.push(KernelRt {
            id,
            name: Arc::clone(self.specs.child_name(dp.id)),
            kind: KernelKind::Child,
            parent: Some(parent),
            depth,
            stream,
            origin_smx,
            cta_threads: dp.child_cta_threads,
            regs_per_thread: dp.child_regs_per_thread,
            shmem_per_cta: dp.child_shmem_per_cta,
            class: dp.class,
            dp: dp.nested,
            dir: CtaDirectory::Uniform {
                source: ThreadSource::Derived {
                    origin: work,
                    items_per_thread: dp.child_items_per_thread,
                },
                total_threads: threads,
            },
            grid_ctas: ctas,
            dispatchable_ctas: 0,
            next_cta: 0,
            live_ctas: 0,
            live_children: 0,
            agg_children: Vec::new(),
            own_done: false,
            fully_done: false,
            created_at: now,
            arrived_at: None,
            first_dispatch: None,
            own_done_at: None,
        });
        self.kernels[parent.index()].live_children += 1;
        self.live_kernels += 1;
        id
    }

    /// Returns (creating on first use) the DTBL aggregation kernel that
    /// collects coalesced child CTAs of `parent`.
    fn agg_kernel_for(&mut self, parent: KernelId, dp: DpParams, now: Cycle) -> KernelId {
        if let Some(&agg) = self.kernels[parent.index()].agg_children.first() {
            return agg;
        }
        let id = KernelId(self.kernels.len() as u32);
        let depth = self.kernels[parent.index()].depth + 1;
        self.kernels.push(KernelRt {
            id,
            name: Arc::clone(self.specs.agg_name(dp.id)),
            kind: KernelKind::Aggregated,
            parent: Some(parent),
            depth,
            stream: StreamId(u32::MAX - id.0), // never enters an HWQ
            origin_smx: None,
            cta_threads: dp.child_cta_threads,
            regs_per_thread: dp.child_regs_per_thread,
            shmem_per_cta: dp.child_shmem_per_cta,
            class: dp.class,
            dp: dp.nested,
            dir: CtaDirectory::Aggregated {
                entries: Vec::new(),
            },
            grid_ctas: 0,
            dispatchable_ctas: 0,
            next_cta: 0,
            live_ctas: 0,
            live_children: 0,
            agg_children: Vec::new(),
            own_done: false,
            fully_done: false,
            created_at: now,
            arrived_at: Some(now),
            first_dispatch: None,
            own_done_at: None,
        });
        self.kernels[parent.index()].agg_children.push(id);
        self.kernels[parent.index()].live_children += 1;
        self.live_kernels += 1;
        self.gmu.register_aggregated(id);
        id
    }

    /// Executes one round of a started warp.
    fn run_round(&mut self, now: Cycle, si: usize, slot: u32) {
        self.prof.enter(ph::ROUND);
        let mut addrs = std::mem::take(&mut self.smxs[si].addr_buf);
        let mut scratch = std::mem::take(&mut self.smxs[si].scratch_buf);
        addrs.clear();
        scratch.clear();
        self.prof.enter(ph::COALESCE);
        let (compute, active, write_line, is_child, seq_len) = {
            let (w, lanes) = self.smxs[si].warp_and_lanes(slot);
            let r = w.rounds_done;
            // Disjoint immutable borrows: warp state from the SMX, the
            // interned work class from the spec table (mirrored onto the
            // warp at install time).
            let class = self.specs.class(w.class);
            let mut active = 0u32;
            let mut first_seed = None;
            // Block-ordered generation in one pass over the lanes:
            // sequential addresses to `addrs`, random references to
            // `scratch`, concatenated below. Coalescing canonicalizes to
            // a sorted unique set, so the set is identical to lane-major
            // order — but the block split lets the coalescer skip sorting
            // the (already ascending) sequential run.
            for lane in lanes {
                if lane.items > r {
                    active += 1;
                    if first_seed.is_none() {
                        first_seed = Some(lane.rand_seed);
                    }
                    if class.seq_bytes_per_item > 0 {
                        addrs.push(lane.seq_base + r as u64 * class.seq_bytes_per_item as u64);
                    }
                    for k in 0..class.rand_refs_per_item {
                        scratch.push(class.rand_addr(lane.rand_seed, r, k));
                    }
                }
            }
            let seq_len = addrs.len();
            addrs.extend_from_slice(&scratch);
            let write_line = if class.writes_per_item > 0 && class.rand_region_bytes > 0 {
                first_seed.map(|s| {
                    class.rand_addr(s ^ 0x5757_5757, r, 0)
                        >> self.cfg.mem.line_bytes.trailing_zeros()
                })
            } else {
                None
            };
            (class.compute_per_item as u64, active, write_line, w.is_child_work, seq_len)
        };
        coalesce_lines_parts(&mut addrs, seq_len, &mut scratch, self.cfg.mem.line_bytes);
        self.prof.exit(); // coalesce
        self.smxs[si].scratch_buf = scratch;
        self.prof.enter(ph::CACHE);
        let mem_done = if addrs.is_empty() {
            now
        } else {
            self.mem
                .warp_read(now, &mut self.smxs[si].l1, &addrs, &mut self.prof)
        };
        if let Some(line) = write_line {
            self.mem.warp_write(now, line, &mut self.prof);
        }
        self.prof.exit(); // cache
        addrs.clear();
        self.smxs[si].addr_buf = addrs;
        self.finish_round(now, si, slot, compute, active, is_child, mem_done);
        self.prof.exit(); // round
    }

    /// The backend-shared tail of a round: items accounting, the MLP
    /// window, and the wakeup at the round's completion time. Runs on
    /// the main thread in both backends (in the parallel one, as part of
    /// the merge replay).
    #[allow(clippy::too_many_arguments)]
    fn finish_round(
        &mut self,
        now: Cycle,
        si: usize,
        slot: u32,
        compute: u64,
        active: u32,
        is_child: bool,
        mem_done: Cycle,
    ) {
        if is_child {
            self.items_child += active as u64;
        } else {
            self.items_inline += active as u64;
        }
        let mlp = self.cfg.mlp_depth as usize;
        let w = self.smxs[si].warp_mut(slot);
        debug_assert!(
            w.outstanding_mem.iter().all(|&d| d != SENTINEL),
            "deferred round tail ran with an unresolved sentinel"
        );
        w.rounds_done += 1;
        // Loop-level memory pipelining: the warp only stalls on a round's
        // memory once `mlp_depth` requests are in flight, except at its
        // final round where everything must drain (results are consumed).
        let mut done = now + compute + 1;
        if mem_done > now {
            w.outstanding_mem.push_back(mem_done);
        }
        if w.rounds_done >= w.rounds_total {
            for &d in &w.outstanding_mem {
                done = done.max(d);
            }
            w.outstanding_mem.clear();
        } else {
            while w.outstanding_mem.len() > mlp.saturating_sub(1) {
                let oldest = w.outstanding_mem.pop_front().expect("non-empty");
                done = done.max(oldest);
            }
        }
        self.schedule_wakeup(si, done, slot);
    }

    /// Returns a finished warp's MLP buffer to the free-list, unless the
    /// list is already at its [`POOL_CAP`] bound (then the buffer drops).
    fn recycle_mem_buf(&mut self, buf: &mut std::collections::VecDeque<Cycle>) {
        buf.clear();
        if self.warp_mem_pool.len() < POOL_CAP {
            self.warp_mem_pool.push(std::mem::take(buf));
        }
    }

    /// Returns a finished CTA's lane table to the free-list, unless the
    /// list is already at its [`POOL_CAP`] bound (then the buffer drops).
    fn recycle_lane_buf(&mut self, mut buf: Vec<ThreadWork>) {
        if self.lane_pool.len() < POOL_CAP {
            buf.clear();
            self.lane_pool.push(buf);
        }
    }

    fn finish_warp(&mut self, now: Cycle, si: usize, slot: u32) {
        let mut w = self.smxs[si].take_warp(slot);
        self.recycle_mem_buf(&mut w.outstanding_mem);
        self.occupancy.add(now, -1);
        if w.is_child_work {
            self.prof.enter(ph::CCQS);
            self.observe_controller(ControllerEvent::ChildWarpFinish {
                now,
                exec_cycles: (now - w.start_cycle).as_u64(),
            });
            self.prof.exit();
        }
        let cta_slot = w.cta_slot;
        let cta = self.smxs[si].cta_mut(cta_slot);
        debug_assert!(cta.live_warps > 0);
        cta.live_warps -= 1;
        if cta.live_warps == 0 {
            self.finish_cta(now, si, cta_slot);
        }
    }

    fn finish_cta(&mut self, now: Cycle, si: usize, cta_slot: u32) {
        let mut cta = self.smxs[si].release_cta(cta_slot);
        let lanes = std::mem::take(&mut cta.lanes);
        self.recycle_lane_buf(lanes);
        if cta.is_child_work {
            debug_assert!(self.child_ctas_running > 0);
            self.child_ctas_running -= 1;
            self.child_ctas_executed += 1;
            let exec = (now - cta.start_cycle).as_u64();
            self.child_cta_exec.push(exec);
            self.prof.enter(ph::CCQS);
            self.observe_controller(ControllerEvent::ChildCtaFinish {
                now,
                exec_cycles: exec,
            });
            self.prof.exit();
        } else {
            debug_assert!(self.parent_ctas_running > 0);
            self.parent_ctas_running -= 1;
        }
        let kid = cta.kernel;
        self.kernels[kid.index()].live_ctas -= 1;
        self.maybe_complete_kernel(now, kid);
        self.schedule_dispatch(now);
    }

    // ----- completion cascade -------------------------------------------

    fn maybe_complete_kernel(&mut self, now: Cycle, kid: KernelId) {
        if !self.kernels[kid.index()].own_done {
            let own = {
                let k = &self.kernels[kid.index()];
                match k.kind {
                    KernelKind::Aggregated => {
                        let parent_done = self.kernels
                            [k.parent.expect("agg kernels have parents").index()]
                        .own_done;
                        parent_done && k.own_work_drained()
                    }
                    _ => k.arrived_at.is_some() && k.own_work_drained(),
                }
            };
            if !own {
                return;
            }
            let (kind, stream, agg_children) = {
                let k = &mut self.kernels[kid.index()];
                k.own_done = true;
                k.own_done_at = Some(now);
                (k.kind, k.stream, k.agg_children.clone())
            };
            self.trace(|| TraceEvent::KernelCompleted { at: now, kernel: kid });
            match kind {
                KernelKind::Aggregated => self.gmu.aggregated_complete(kid),
                _ => {
                    // The HWQ slot stays occupied until the turnaround
                    // floor elapses, bounding back-to-back kernel rate.
                    let floor = self.kernels[kid.index()]
                        .first_dispatch
                        .expect("own-complete implies dispatched")
                        + self.cfg.launch.hwq_turnaround_cycles;
                    if floor > now {
                        self.push_global(floor, Ev::HwqRelease(kid));
                    } else {
                        self.gmu.kernel_complete(kid, stream);
                    }
                }
            }
            self.schedule_dispatch(now);
            // Our own completion may unblock our aggregation kernels.
            for agg in agg_children {
                self.maybe_complete_kernel(now, agg);
            }
        }
        self.try_fully_complete(kid);
    }

    fn try_fully_complete(&mut self, kid: KernelId) {
        let k = &self.kernels[kid.index()];
        if k.fully_done || !k.own_done || k.live_children > 0 {
            return;
        }
        let parent = k.parent;
        self.kernels[kid.index()].fully_done = true;
        debug_assert!(self.live_kernels > 0);
        self.live_kernels -= 1;
        if let Some(p) = parent {
            let pk = &mut self.kernels[p.index()];
            debug_assert!(pk.live_children > 0);
            pk.live_children -= 1;
            self.try_fully_complete(p);
        }
    }

    // ----- sampling & report --------------------------------------------

    fn utilization_now(&self) -> f64 {
        let mut used_t = 0u64;
        let mut used_r = 0u64;
        let mut used_m = 0u64;
        for s in &self.smxs {
            used_t += s.used_threads as u64;
            used_r += s.used_regs as u64;
            used_m += s.used_shmem as u64;
        }
        let n = self.smxs.len() as u64;
        let t = used_t as f64 / (n * self.cfg.max_threads_per_smx as u64) as f64;
        let r = used_r as f64 / (n * self.cfg.regs_per_smx as u64) as f64;
        let m = used_m as f64 / (n * self.cfg.shmem_per_smx as u64) as f64;
        t.max(r).max(m)
    }

    fn on_sample(&mut self, now: Cycle) {
        let peak = self
            .smxs
            .iter()
            .map(|s| {
                let (t, r, m) = s.utilization();
                t.max(r).max(m)
            })
            .fold(0.0f64, f64::max);
        let utilization = self.utilization_now();
        self.timeline.push((
            now.as_u64(),
            TimelineSample {
                parent_ctas: self.parent_ctas_running,
                child_ctas: self.child_ctas_running,
                utilization,
                concurrent_kernels: self.gmu.concurrent_kernels(),
                peak_smx_utilization: peak,
            },
        ));
        if let Some(hook) = &self.watch {
            hook(WatchSample {
                now: now.as_u64(),
                queue_depth: (self.gmu.pending() + self.inflight_launches) as f64,
                hwq_utilization: self.gmu.concurrent_kernels() as f64
                    / self.cfg.num_hwqs as f64,
                utilization,
                parent_ctas: self.parent_ctas_running,
                child_ctas: self.child_ctas_running,
            });
        }
        if let Some(ts) = self.timeseries.as_deref_mut() {
            ts.sample(
                now.as_u64(),
                (self.gmu.pending() + self.inflight_launches) as f64,
                self.gmu.concurrent_kernels() as f64 / self.cfg.num_hwqs as f64,
                self.controller.monitored(),
                &self.smxs,
            );
        }
        if self.live_kernels > 0 {
            self.push_global(now + self.cfg.sample_period, Ev::Sample);
        }
    }

    fn build_report(&mut self) -> SimReport {
        let events_local: u64 = self.smxs.iter().map(|s| s.events_local).sum();
        let kernels = self
            .kernels
            .iter()
            .map(|k| KernelSummary {
                id: k.id.0,
                name: k.name.clone(),
                role: match k.kind {
                    KernelKind::Host => KernelRole::Host,
                    KernelKind::Child => KernelRole::Child,
                    KernelKind::Aggregated => KernelRole::Aggregated,
                },
                depth: k.depth,
                grid_ctas: k.grid_ctas,
                created_at: k.created_at.as_u64(),
                arrived_at: k.arrived_at.map(Cycle::as_u64),
                first_dispatch: k.first_dispatch.map(Cycle::as_u64),
                own_done_at: k.own_done_at.map(Cycle::as_u64),
            })
            .collect();
        let total = self.now;
        let warp_capacity =
            self.cfg.smx_count as u64 * self.cfg.max_warps_per_smx() as u64;
        let occupancy = if total == Cycle::ZERO {
            0.0
        } else {
            self.occupancy.mean(Cycle::ZERO, total) / warp_capacity as f64
        };
        SimReport {
            controller: self.controller.name().to_string(),

            total_cycles: total.as_u64(),
            child_kernels_launched: self.child_kernels,
            launch_requests: self.launch_requests,
            inlined_requests: self.inlined_requests,
            redistributed_requests: self.redistributed_requests,
            aggregated_launches: self.aggregated_launches,
            aggregated_ctas: self.aggregated_cta_count,
            child_ctas_executed: self.child_ctas_executed,
            items_inline: self.items_inline,
            items_child: self.items_child,
            occupancy,
            mem: self.mem.stats(),
            dram_row_hit_rate: self.mem.dram_row_hit_rate(),
            avg_child_queue_latency: if self.queue_lat_count == 0 {
                0.0
            } else {
                self.queue_lat_sum as f64 / self.queue_lat_count as f64
            },
            max_pending_kernels: self.gmu.max_pending_seen(),
            timeline: std::mem::take(&mut self.timeline),
            child_cta_exec_cycles: std::mem::take(&mut self.child_cta_exec),
            child_launch_cycles: std::mem::take(&mut self.child_launch_times),
            events_processed: self.events_global + events_local,
            events_global: self.events_global,
            events_local,
            dead_wakeups: self.dead_wakeups,
            peak_queue_depth: self.peak_queue_depth,
            peak_local_backlog: self.peak_local_backlog,
            wall_ms: self.wall_ms,
            kernels,
        }
    }

    /// Assembles the JSON run artifact: config echo, report, component
    /// metrics (GMU, SMXs, memory, controller), CCQS estimate-vs-actual
    /// samples, and the trace (when enabled).
    fn build_artifact(&self, report: &SimReport) -> RunArtifact {
        let mut reg = MetricsRegistry::new(self.metrics_level);
        reg.counter("sim.events_processed", report.events_processed);
        reg.counter("sim.events_global", report.events_global);
        reg.counter("sim.events_local", report.events_local);
        reg.counter("sim.dead_wakeups", self.dead_wakeups);
        reg.counter("sim.peak_queue_depth", self.peak_queue_depth);
        reg.counter("sim.peak_local_backlog", self.peak_local_backlog);
        reg.gauge("sim.occupancy", report.occupancy);
        reg.histogram("sim.child_cta_exec_cycles", &report.child_cta_exec_cycles);
        reg.histogram("sim.child_launch_cycles", &report.child_launch_cycles);
        self.gmu.export_metrics(&mut reg);
        let per_smx: Vec<u64> = self.smxs.iter().map(|s| s.ctas_executed).collect();
        reg.histogram("smx.ctas_executed", &per_smx);
        let peak = self
            .smxs
            .iter()
            .map(|s| s.peak_resident_warps)
            .max()
            .unwrap_or(0);
        reg.gauge("smx.peak_resident_warps", peak as f64);
        if self.metrics_level.at_least_full() {
            for s in &self.smxs {
                s.export_metrics(&mut reg);
            }
        }
        self.controller.export_metrics(&mut reg);
        let samples = self.ccqs_samples(report);
        RunArtifact::build(
            self.metrics_level,
            &self.cfg,
            report,
            &reg,
            &samples,
            self.timeseries.as_deref().map(SimSeries::to_json),
            self.trace.as_ref(),
        )
    }

    /// Pairs the controller's Eq. 1 completion-time predictions (decision
    /// order) with the child kernels' observed completion latencies
    /// (creation order) — the artifact's estimate-vs-actual samples.
    fn ccqs_samples(&self, report: &SimReport) -> Vec<CcqsSample> {
        let Some(preds) = self.controller.predictions() else {
            return Vec::new();
        };
        let children = report
            .kernels
            .iter()
            .filter(|k| k.role == KernelRole::Child);
        preds
            .iter()
            .zip(children)
            .map(|(&estimate, k)| CcqsSample {
                kernel: k.id,
                estimate,
                actual: k.own_done_at.map(|done| done - k.created_at),
            })
            .collect()
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("live_kernels", &self.live_kernels)
            .field("kernels", &self.kernels.len())
            .field("events", &self.events)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use crate::work::WorkClass;

    /// Test policy: launch a kernel whenever the workload exceeds the
    /// app threshold (what Baseline-DP does; re-implemented here so the
    /// gpu crate's tests do not depend on dynapar-core).
    struct LaunchOverThreshold;
    impl LaunchController for LaunchOverThreshold {
        fn name(&self) -> &str {
            "test-threshold"
        }
        fn decide(&mut self, req: &ChildRequest) -> LaunchDecision {
            if req.items > req.default_threshold {
                LaunchDecision::Kernel
            } else {
                LaunchDecision::Inline
            }
        }
    }

    /// Test policy: DTBL-style aggregation over the threshold.
    struct AggregateOverThreshold;
    impl LaunchController for AggregateOverThreshold {
        fn name(&self) -> &str {
            "test-dtbl"
        }
        fn decide(&mut self, req: &ChildRequest) -> LaunchDecision {
            if req.items > req.default_threshold {
                LaunchDecision::Aggregated
            } else {
                LaunchDecision::Inline
            }
        }
    }

    fn mem_class(label: &'static str, compute: u32) -> Arc<WorkClass> {
        Arc::new(WorkClass {
            label,
            compute_per_item: compute,
            init_cycles: 10,
            seq_bytes_per_item: 8,
            rand_refs_per_item: 1,
            rand_region_base: 0x1000_0000,
            rand_region_bytes: 1 << 22,
            writes_per_item: 1,
        })
    }

    fn dp_spec(threshold: u32) -> Arc<DpSpec> {
        Arc::new(DpSpec {
            child_class: mem_class("child", 20),
            child_cta_threads: 64,
            child_items_per_thread: 1,
            child_regs_per_thread: 16,
            child_shmem_per_cta: 0,
            min_items: 32,
            default_threshold: threshold,
            nested: None,
        })
    }

    /// Imbalanced parent: most threads have 2 items, every 64th has 500.
    fn imbalanced_kernel(dp: Option<Arc<DpSpec>>) -> KernelDesc {
        let threads: Vec<ThreadWork> = (0..512u32)
            .map(|t| ThreadWork {
                items: if t % 64 == 0 { 500 } else { 2 },
                seq_base: t as u64 * 8192,
                rand_seed: t as u64,
            })
            .collect();
        KernelDesc {
            name: "imbalanced".into(),
            cta_threads: 128,
            regs_per_thread: 24,
            shmem_per_cta: 0,
            class: mem_class("parent", 24),
            source: ThreadSource::Explicit(threads.into()),
            dp,
        }
    }

    fn total_items() -> u64 {
        (0..512u64).map(|t| if t % 64 == 0 { 500 } else { 2 }).sum()
    }

    fn run_with(controller: Box<dyn LaunchController>, dp: Option<Arc<DpSpec>>) -> SimReport {
        let mut sim = Simulation::builder(GpuConfig::test_small())
            .controller(controller)
            .build();
        sim.launch_host(imbalanced_kernel(dp));
        sim.run().report
    }

    #[test]
    fn flat_run_executes_every_item_inline() {
        let r = run_with(Box::new(crate::InlineAll), Some(dp_spec(64)));
        assert_eq!(r.items_total(), total_items());
        assert_eq!(r.items_child, 0);
        assert_eq!(r.child_kernels_launched, 0);
        assert!(r.total_cycles > 0);
        assert!(r.occupancy > 0.0 && r.occupancy <= 1.0);
    }

    #[test]
    fn dp_run_conserves_work_and_offloads() {
        let r = run_with(Box::new(LaunchOverThreshold), Some(dp_spec(64)));
        assert_eq!(r.items_total(), total_items());
        // 8 heavy threads (every 64th of 512) launch children.
        assert_eq!(r.child_kernels_launched, 8);
        assert_eq!(r.items_child, 8 * 500);
        assert!(r.child_ctas_executed > 0);
        assert_eq!(r.child_ctas_executed as usize, r.child_cta_exec_cycles.len());
        assert_eq!(r.child_launch_cycles.len(), 8);
    }

    #[test]
    fn dp_beats_flat_on_imbalanced_workload() {
        let flat = run_with(Box::new(crate::InlineAll), Some(dp_spec(64)));
        let dp = run_with(Box::new(LaunchOverThreshold), Some(dp_spec(64)));
        assert!(
            dp.total_cycles < flat.total_cycles,
            "DP {} should beat flat {} on heavy imbalance",
            dp.total_cycles,
            flat.total_cycles
        );
    }

    #[test]
    fn launch_overhead_delays_children() {
        let r = run_with(Box::new(LaunchOverThreshold), Some(dp_spec(64)));
        // Child kernels cannot start before b = 20210 cycles of overhead.
        assert!(r.avg_child_queue_latency >= 0.0);
        let first_launch = *r.child_launch_cycles.iter().min().expect("launches");
        assert!(first_launch < 20_210, "launch call happens early");
        // The run must outlast the launch overhead.
        assert!(r.total_cycles > 20_210);
    }

    #[test]
    fn aggregated_path_avoids_kernels() {
        let r = run_with(Box::new(AggregateOverThreshold), Some(dp_spec(64)));
        assert_eq!(r.child_kernels_launched, 0);
        assert_eq!(r.aggregated_launches, 8);
        assert!(r.aggregated_ctas >= 8);
        assert_eq!(r.items_total(), total_items());
        assert_eq!(r.items_child, 8 * 500);
    }

    #[test]
    fn dtbl_starts_children_sooner_than_kernel_launch() {
        let kern = run_with(Box::new(LaunchOverThreshold), Some(dp_spec(64)));
        let dtbl = run_with(Box::new(AggregateOverThreshold), Some(dp_spec(64)));
        // DTBL pays no A*x+b overhead, so on this launch-bound workload it
        // should not be slower.
        assert!(dtbl.total_cycles <= kern.total_cycles);
    }

    #[test]
    fn determinism_same_inputs_same_report() {
        let a = run_with(Box::new(LaunchOverThreshold), Some(dp_spec(64)));
        let b = run_with(Box::new(LaunchOverThreshold), Some(dp_spec(64)));
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.child_kernels_launched, b.child_kernels_launched);
        assert_eq!(a.items_inline, b.items_inline);
        assert_eq!(a.mem, b.mem);
        assert_eq!(a.events_processed, b.events_processed);
    }

    fn run_backend(
        controller: Box<dyn LaunchController>,
        dp: Option<Arc<DpSpec>>,
        backend: SimBackend,
    ) -> SimReport {
        let mut sim = Simulation::builder(GpuConfig::test_small())
            .controller(controller)
            .backend(backend)
            .build();
        sim.launch_host(imbalanced_kernel(dp));
        sim.run().report
    }

    /// The parallel backend must be bit-identical to the sequential one
    /// on every observable report field, for any worker count. The full
    /// artifact-byte matrix lives in the bench crate; this is the
    /// in-crate canary.
    #[test]
    fn parallel_backend_matches_sequential_report() {
        type Mk = fn() -> Box<dyn LaunchController>;
        let controllers: [Mk; 3] = [
            || Box::new(crate::InlineAll),
            || Box::new(LaunchOverThreshold),
            || Box::new(AggregateOverThreshold),
        ];
        for mk in controllers {
            let seq = run_backend(mk(), Some(dp_spec(64)), SimBackend::Seq);
            for jobs in [1usize, 2, 4, 7] {
                let par = run_backend(mk(), Some(dp_spec(64)), SimBackend::Par(jobs));
                let name = format!("{} jobs={jobs}", seq.controller);
                assert_eq!(seq.total_cycles, par.total_cycles, "{name}");
                assert_eq!(seq.child_kernels_launched, par.child_kernels_launched, "{name}");
                assert_eq!(seq.launch_requests, par.launch_requests, "{name}");
                assert_eq!(seq.inlined_requests, par.inlined_requests, "{name}");
                assert_eq!(seq.aggregated_launches, par.aggregated_launches, "{name}");
                assert_eq!(seq.aggregated_ctas, par.aggregated_ctas, "{name}");
                assert_eq!(seq.child_ctas_executed, par.child_ctas_executed, "{name}");
                assert_eq!(seq.items_inline, par.items_inline, "{name}");
                assert_eq!(seq.items_child, par.items_child, "{name}");
                assert_eq!(seq.mem, par.mem, "{name}");
                assert_eq!(seq.events_processed, par.events_processed, "{name}");
                assert_eq!(seq.events_global, par.events_global, "{name}");
                assert_eq!(seq.events_local, par.events_local, "{name}");
                assert_eq!(seq.dead_wakeups, par.dead_wakeups, "{name}");
                assert_eq!(seq.peak_queue_depth, par.peak_queue_depth, "{name}");
                assert_eq!(seq.peak_local_backlog, par.peak_local_backlog, "{name}");
                assert_eq!(
                    seq.occupancy.to_bits(),
                    par.occupancy.to_bits(),
                    "{name}"
                );
                assert_eq!(
                    seq.avg_child_queue_latency.to_bits(),
                    par.avg_child_queue_latency.to_bits(),
                    "{name}"
                );
                assert_eq!(seq.child_cta_exec_cycles, par.child_cta_exec_cycles, "{name}");
                assert_eq!(seq.child_launch_cycles, par.child_launch_cycles, "{name}");
            }
        }
    }

    #[test]
    fn no_dp_spec_means_no_requests() {
        let r = run_with(Box::new(LaunchOverThreshold), None);
        assert_eq!(r.launch_requests, 0);
        assert_eq!(r.items_total(), total_items());
    }

    #[test]
    fn timeline_and_samples_are_recorded() {
        let r = run_with(Box::new(LaunchOverThreshold), Some(dp_spec(64)));
        assert!(!r.timeline.is_empty());
        // Samples are time-ordered and CTAs bounded by the hardware limit.
        let cfg = GpuConfig::test_small();
        let max = cfg.max_concurrent_ctas();
        for w in r.timeline.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for (_, s) in &r.timeline {
            assert!(s.total_ctas() <= max);
            assert!(s.utilization >= 0.0 && s.utilization <= 1.0);
        }
    }

    #[test]
    fn schedulers_both_complete_with_same_work() {
        for sched in [SchedulerKind::Gto, SchedulerKind::RoundRobin] {
            let mut cfg = GpuConfig::test_small();
            cfg.scheduler = sched;
            let mut sim = Simulation::builder(cfg)
                .controller(Box::new(LaunchOverThreshold))
                .build();
            sim.launch_host(imbalanced_kernel(Some(dp_spec(64))));
            let r = sim.run().report;
            assert_eq!(r.items_total(), total_items(), "{sched:?}");
        }
    }

    #[test]
    fn stream_policies_both_complete() {
        // Many children per parent CTA, and more HWQs than parent CTAs, so
        // per-parent-CTA streams actually serialize children (Fig. 8).
        let threads: Arc<[ThreadWork]> = (0..512u32)
            .map(|t| ThreadWork {
                items: if t % 8 == 0 { 300 } else { 2 },
                seq_base: t as u64 * 8192,
                rand_seed: t as u64,
            })
            .collect();
        let expected: u64 = (0..512u64).map(|t| if t % 8 == 0 { 300 } else { 2 }).sum();
        let mk = || KernelDesc {
            name: "streams".into(),
            cta_threads: 128,
            regs_per_thread: 24,
            shmem_per_cta: 0,
            class: mem_class("parent", 24),
            source: ThreadSource::Explicit(threads.clone()),
            dp: Some(dp_spec(64)),
        };
        let mut totals = Vec::new();
        for policy in [StreamPolicy::PerChildKernel, StreamPolicy::PerParentCta] {
            let mut cfg = GpuConfig::test_small();
            cfg.num_hwqs = 32;
            cfg.stream_policy = policy;
            let mut sim = Simulation::builder(cfg)
                .controller(Box::new(LaunchOverThreshold))
                .build();
            sim.launch_host(mk());
            let r = sim.run().report;
            assert_eq!(r.items_total(), expected, "{policy:?}");
            totals.push(r.total_cycles);
        }
        // Per-child streams should be at least as fast (Fig. 8 direction).
        assert!(
            totals[0] <= totals[1],
            "per-child {} vs per-CTA {}",
            totals[0],
            totals[1]
        );
    }

    #[test]
    fn nested_launch_executes_grandchildren() {
        let grandchild = Arc::new(DpSpec {
            child_class: mem_class("grandchild", 10),
            child_cta_threads: 32,
            child_items_per_thread: 1,
            child_regs_per_thread: 16,
            child_shmem_per_cta: 0,
            min_items: 16,
            default_threshold: 32,
            nested: None,
        });
        let spec = Arc::new(DpSpec {
            child_class: mem_class("child", 20),
            child_cta_threads: 64,
            // Child threads get 64 items each so they can re-offload.
            child_items_per_thread: 64,
            child_regs_per_thread: 16,
            child_shmem_per_cta: 0,
            min_items: 64,
            default_threshold: 128,
            nested: Some(grandchild),
        });
        let threads: Vec<ThreadWork> = (0..64u32)
            .map(|t| ThreadWork {
                items: 1024,
                seq_base: t as u64 * 65536,
                rand_seed: t as u64,
            })
            .collect();
        let mut sim = Simulation::builder(GpuConfig::test_small())
            .controller(Box::new(LaunchOverThreshold))
            .build();
        sim.launch_host(KernelDesc {
            name: "nested".into(),
            cta_threads: 64,
            regs_per_thread: 24,
            shmem_per_cta: 0,
            class: mem_class("parent", 24),
            source: ThreadSource::Explicit(threads.into()),
            dp: Some(spec),
        });
        let r = sim.run().report;
        assert_eq!(r.items_total(), 64 * 1024);
        // Parent threads (1024 items > 128) launch children; child threads
        // (64 items > 32) launch grandchildren, so launches > 64.
        assert!(
            r.child_kernels_launched > 64,
            "expected nested launches, got {}",
            r.child_kernels_launched
        );
    }

    #[test]
    fn empty_simulation_terminates() {
        let sim = Simulation::builder(GpuConfig::test_small()).build();
        let r = sim.run().report;
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.items_total(), 0);
    }

    #[test]
    fn multiple_host_kernels_all_complete() {
        let mut sim = Simulation::builder(GpuConfig::test_small()).build();
        for _ in 0..3 {
            sim.launch_host(imbalanced_kernel(None));
        }
        let r = sim.run().report;
        assert_eq!(r.items_total(), 3 * total_items());
    }

    #[test]
    fn divergence_penalizes_imbalanced_warps() {
        // Same total items, balanced vs one hot lane per warp.
        let balanced: Vec<ThreadWork> = (0..256u32)
            .map(|t| ThreadWork {
                items: 32,
                seq_base: t as u64 * 4096,
                rand_seed: t as u64,
            })
            .collect();
        let imbalanced: Vec<ThreadWork> = (0..256u32)
            .map(|t| ThreadWork {
                items: if t % 32 == 0 { 32 * 32 } else { 0 },
                seq_base: t as u64 * 4096,
                rand_seed: t as u64,
            })
            .collect();
        let mk = |threads: Vec<ThreadWork>| KernelDesc {
            name: "div".into(),
            cta_threads: 128,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass::compute_only("div", 16)),
            source: ThreadSource::Explicit(threads.into()),
            dp: None,
        };
        let mut s1 = Simulation::builder(GpuConfig::test_small()).build();
        s1.launch_host(mk(balanced));
        let r1 = s1.run().report;
        let mut s2 = Simulation::builder(GpuConfig::test_small()).build();
        s2.launch_host(mk(imbalanced));
        let r2 = s2.run().report;
        assert_eq!(r1.items_total(), r2.items_total());
        assert!(
            r2.total_cycles > r1.total_cycles * 3 / 2,
            "imbalanced {} should be much slower than balanced {}",
            r2.total_cycles,
            r1.total_cycles
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::stats::KernelRole;
    use crate::work::WorkClass;

    struct LaunchAll;
    impl LaunchController for LaunchAll {
        fn name(&self) -> &str {
            "launch-all"
        }
        fn decide(&mut self, _req: &ChildRequest) -> LaunchDecision {
            LaunchDecision::Kernel
        }
    }

    fn spec(threshold: u32) -> Arc<DpSpec> {
        Arc::new(DpSpec {
            child_class: Arc::new(WorkClass::compute_only("c", 8)),
            child_cta_threads: 32,
            child_items_per_thread: 1,
            child_regs_per_thread: 8,
            child_shmem_per_cta: 0,
            min_items: 8,
            default_threshold: threshold,
            nested: None,
        })
    }

    fn kernel_with(dp: Option<Arc<DpSpec>>, threads: impl Into<Arc<[ThreadWork]>>) -> KernelDesc {
        KernelDesc {
            name: "t".into(),
            cta_threads: 64,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass::compute_only("p", 8)),
            source: ThreadSource::Explicit(threads.into()),
            dp,
        }
    }

    #[test]
    fn pending_pool_overflow_forces_inline() {
        let mut cfg = GpuConfig::test_small();
        cfg.pending_pool_cap = 2; // absurdly small pool
        let threads: Vec<ThreadWork> = (0..256)
            .map(|t| ThreadWork {
                items: 64,
                seq_base: t as u64 * 1024,
                rand_seed: t as u64,
            })
            .collect();
        let mut sim = Simulation::builder(cfg)
            .controller(Box::new(LaunchAll))
            .build();
        sim.launch_host(kernel_with(Some(spec(8)), threads));
        let r = sim.run().report;
        // The controller said "launch" every time, but the pool cap turned
        // most of those into inline execution (API returns "fail").
        assert!(r.inlined_requests > 0, "pool-full path never exercised");
        assert_eq!(r.items_total(), 256 * 64);
        assert!(r.max_pending_kernels <= 2);
    }

    #[test]
    fn hwq_turnaround_defers_queue_release() {
        // One stream, two kernels: the second cannot arrive at the SMX
        // before the first's HWQ seat is released at the turnaround floor.
        let mk = || kernel_with(None, vec![ThreadWork::with_items(1); 32]);
        let run_with_turnaround = |ta: u64| {
            let mut cfg = GpuConfig::test_small();
            cfg.num_hwqs = 1; // force both host kernels onto one HWQ
            cfg.launch.hwq_turnaround_cycles = ta;
            let mut sim = Simulation::builder(cfg).build();
            sim.launch_host(mk());
            sim.launch_host(mk());
            sim.run().report.total_cycles
        };
        let fast = run_with_turnaround(0);
        let slow = run_with_turnaround(50_000);
        assert!(
            slow >= fast + 40_000,
            "turnaround floor must delay the second kernel: {fast} vs {slow}"
        );
    }

    #[test]
    fn kernel_summaries_describe_the_run() {
        let threads: Vec<ThreadWork> = (0..64)
            .map(|t| ThreadWork {
                items: if t == 0 { 100 } else { 2 },
                seq_base: 0,
                rand_seed: t as u64,
            })
            .collect();
        let mut sim = Simulation::builder(GpuConfig::test_small())
            .controller(Box::new(LaunchAll))
            .build();
        sim.launch_host(kernel_with(Some(spec(8)), threads));
        let r = sim.run().report;
        assert_eq!(r.kernels.len(), 1 + r.child_kernels_launched as usize);
        let host = &r.kernels[0];
        assert_eq!(host.role, KernelRole::Host);
        assert_eq!(host.depth, 0);
        assert_eq!(host.created_at, 0);
        assert!(host.own_done_at.is_some());
        for child in &r.kernels[1..] {
            assert_eq!(child.role, KernelRole::Child);
            assert_eq!(child.depth, 1);
            // Launch latency covers at least the fixed overhead b.
            let lat = child.launch_latency().expect("child arrived");
            assert!(lat >= GpuConfig::test_small().launch.b, "latency {lat}");
            assert!(child.queue_latency().is_some());
            assert!(child.own_done_at.is_some());
        }
    }

    #[test]
    fn per_warp_launch_latency_grows() {
        // One warp whose lanes all launch: the i-th child's launch latency
        // must grow by `a` per prior launch (A·x + b).
        let threads: Vec<ThreadWork> = (0..8)
            .map(|t| ThreadWork {
                items: 64,
                seq_base: 0,
                rand_seed: t as u64,
            })
            .collect();
        let cfg = GpuConfig::test_small();
        let (a, b) = (cfg.launch.a, cfg.launch.b);
        let mut sim = Simulation::builder(cfg)
            .controller(Box::new(LaunchAll))
            .build();
        sim.launch_host(kernel_with(Some(spec(8)), threads));
        let r = sim.run().report;
        assert_eq!(r.child_kernels_launched, 8);
        let lats: Vec<u64> = r.kernels[1..]
            .iter()
            .map(|k| k.launch_latency().expect("arrived"))
            .collect();
        for (i, &lat) in lats.iter().enumerate() {
            assert_eq!(lat, a * (i as u64 + 1) + b, "launch {i}");
        }
    }

    #[test]
    fn timeline_tracks_concurrent_kernels_within_hwq_limit() {
        let mut cfg = GpuConfig::test_small();
        cfg.num_hwqs = 4;
        let threads: Vec<ThreadWork> = (0..512)
            .map(|t| ThreadWork {
                items: 40,
                seq_base: t as u64 * 512,
                rand_seed: t as u64,
            })
            .collect();
        let mut sim = Simulation::builder(cfg)
            .controller(Box::new(LaunchAll))
            .build();
        sim.launch_host(kernel_with(Some(spec(8)), threads));
        let r = sim.run().report;
        assert!(r.timeline.iter().any(|(_, s)| s.concurrent_kernels > 0));
        for (_, s) in &r.timeline {
            assert!(s.concurrent_kernels <= 4, "HWQ limit violated");
            assert!(s.peak_smx_utilization >= s.utilization - 1e-9);
        }
    }

    #[test]
    fn queue_latency_reflects_contention() {
        // Many kernels, few HWQs: average queue latency grows vs many HWQs.
        let threads: Arc<[ThreadWork]> = (0..512)
            .map(|t| ThreadWork {
                items: 40,
                seq_base: t as u64 * 512,
                rand_seed: t as u64,
            })
            .collect();
        let run_with_hwqs = |n: u32| {
            let mut cfg = GpuConfig::test_small();
            cfg.num_hwqs = n;
            let mut sim = Simulation::builder(cfg)
            .controller(Box::new(LaunchAll))
            .build();
            sim.launch_host(kernel_with(Some(spec(8)), threads.clone()));
            sim.run().report.avg_child_queue_latency
        };
        let narrow = run_with_hwqs(1);
        let wide = run_with_hwqs(32);
        assert!(
            narrow > wide,
            "1 HWQ ({narrow}) must queue longer than 32 ({wide})"
        );
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::TraceEvent;
    use crate::work::WorkClass;

    struct LaunchAll;
    impl LaunchController for LaunchAll {
        fn name(&self) -> &str {
            "launch-all"
        }
        fn decide(&mut self, _req: &ChildRequest) -> LaunchDecision {
            LaunchDecision::Kernel
        }
    }

    fn traced_run() -> (SimReport, crate::trace::Trace) {
        let threads: Vec<ThreadWork> = (0..64)
            .map(|t| ThreadWork {
                items: if t % 8 == 0 { 100 } else { 2 },
                seq_base: 0,
                rand_seed: t as u64,
            })
            .collect();
        let mut sim = Simulation::builder(GpuConfig::test_small())
            .controller(Box::new(LaunchAll))
            .trace(100_000)
            .build();
        sim.launch_host(KernelDesc {
            name: "traced".into(),
            cta_threads: 64,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass::compute_only("p", 8)),
            source: ThreadSource::Explicit(threads.into()),
            dp: Some(Arc::new(DpSpec {
                child_class: Arc::new(WorkClass::compute_only("c", 8)),
                child_cta_threads: 32,
                child_items_per_thread: 1,
                child_regs_per_thread: 8,
                child_shmem_per_cta: 0,
                min_items: 8,
                default_threshold: 8,
                nested: None,
            })),
        });
        let out = sim.run();
        (out.report, out.trace.expect("trace enabled on builder"))
    }

    #[test]
    fn trace_correlates_with_report() {
        let (report, trace) = traced_run();
        assert_eq!(trace.dropped(), 0);
        assert_eq!(
            trace.decisions().count() as u64,
            report.launch_requests,
            "one Decision event per request"
        );
        let created = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::KernelCreated { parent: Some(_), .. }))
            .count() as u64;
        assert_eq!(created, report.child_kernels_launched);
        let dispatched = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::CtaDispatched { .. }))
            .count() as u64;
        assert!(dispatched >= report.child_ctas_executed);
    }

    #[test]
    fn trace_events_are_time_ordered() {
        let (_, trace) = traced_run();
        for w in trace.events().windows(2) {
            assert!(w[0].at() <= w[1].at());
        }
    }

    #[test]
    fn kernel_lifecycle_is_complete_in_trace() {
        let (report, trace) = traced_run();
        // Every child kernel has create -> arrive -> dispatch -> complete.
        for k in &report.kernels {
            let evs = trace.kernel_events(crate::KernelId(k.id));
            assert!(
                evs.len() >= 3,
                "kernel {} has only {} events",
                k.id,
                evs.len()
            );
            assert!(evs
                .iter()
                .any(|e| matches!(e, TraceEvent::KernelCompleted { .. })));
        }
    }

    #[test]
    fn run_without_trace_opt_in_yields_none() {
        let mut sim = Simulation::builder(GpuConfig::test_small()).build();
        sim.launch_host(KernelDesc {
            name: "mini".into(),
            cta_threads: 32,
            regs_per_thread: 8,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass::compute_only("p", 2)),
            source: ThreadSource::Derived {
                origin: ThreadWork::with_items(32),
                items_per_thread: 1,
            },
            dp: None,
        });
        let out = sim.run();
        assert!(out.report.total_cycles > 0);
        // Tracing is strictly opt-in on the builder.
        assert!(out.trace.is_none());
        // Metrics default to Off: no artifact either.
        assert!(out.artifact.is_none());
    }
}

#[cfg(test)]
mod placement_tests {
    use super::*;
    use crate::config::CtaPlacement;
    use crate::work::WorkClass;

    struct LaunchAll;
    impl LaunchController for LaunchAll {
        fn name(&self) -> &str {
            "launch-all"
        }
        fn decide(&mut self, _req: &ChildRequest) -> LaunchDecision {
            LaunchDecision::Kernel
        }
    }

    fn dp_kernel() -> KernelDesc {
        // Purely sequential streams: the child re-reads exactly the
        // parent's lines, so co-placement's L1 benefit is the dominant
        // signal rather than being diluted by random-region misses (which
        // would leave the comparison at the mercy of same-cycle memory
        // interleaving noise at this tiny scale).
        let mk = |label: &'static str| WorkClass {
            label,
            compute_per_item: 10,
            init_cycles: 10,
            seq_bytes_per_item: 8,
            rand_refs_per_item: 0,
            rand_region_base: 0x8000_0000,
            rand_region_bytes: 1 << 18,
            writes_per_item: 0,
        };
        let threads: Vec<ThreadWork> = (0..256)
            .map(|t| ThreadWork {
                items: if t % 8 == 0 { 200 } else { 4 },
                seq_base: 0x1000_0000 + t as u64 * 8192,
                rand_seed: t as u64,
            })
            .collect();
        KernelDesc {
            name: "aff".into(),
            cta_threads: 64,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            class: Arc::new(mk("aff-parent")),
            source: ThreadSource::Explicit(threads.into()),
            dp: Some(Arc::new(DpSpec {
                child_class: Arc::new(mk("aff-child")),
                child_cta_threads: 32,
                child_items_per_thread: 1,
                child_regs_per_thread: 8,
                child_shmem_per_cta: 0,
                min_items: 8,
                default_threshold: 8,
                nested: None,
            })),
        }
    }

    fn run_with_placement(p: CtaPlacement) -> SimReport {
        let mut cfg = GpuConfig::test_small();
        cfg.cta_placement = p;
        let mut sim = Simulation::builder(cfg)
            .controller(Box::new(LaunchAll))
            .build();
        sim.launch_host(dp_kernel());
        sim.run().report
    }

    #[test]
    fn parent_affinity_improves_l1_reuse() {
        let rr = run_with_placement(CtaPlacement::RoundRobin);
        let aff = run_with_placement(CtaPlacement::ParentAffinity);
        assert_eq!(rr.items_total(), aff.items_total());
        // Children re-read the parent's streams: placing them on the
        // parent's SMX must not reduce L1 hit rate, and typically raises it.
        assert!(
            aff.mem.l1_hit_rate() >= rr.mem.l1_hit_rate() - 1e-9,
            "affinity L1 {} vs RR {}",
            aff.mem.l1_hit_rate(),
            rr.mem.l1_hit_rate()
        );
    }

    #[test]
    fn host_kernels_on_default_stream_serialize() {
        // Two host kernels on the default stream: the second cannot start
        // before the first's own work completes.
        let mk = || KernelDesc {
            name: "seq".into(),
            cta_threads: 32,
            regs_per_thread: 8,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass::compute_only("seq", 50)),
            source: ThreadSource::Derived {
                origin: ThreadWork::with_items(32 * 20),
                items_per_thread: 20,
            },
            dp: None,
        };
        let mut sim = Simulation::builder(GpuConfig::test_small()).build();
        sim.launch_host(mk());
        sim.launch_host(mk());
        let r = sim.run().report;
        let k0_done = r.kernels[0].own_done_at.expect("done");
        let k1_start = r.kernels[1].first_dispatch.expect("dispatched");
        assert!(
            k1_start >= k0_done,
            "K1 started at {k1_start} before K0 finished at {k0_done}"
        );

        // Distinct streams run concurrently.
        let mut sim = Simulation::builder(GpuConfig::test_small()).build();
        sim.launch_host_on_stream(mk(), StreamId(0));
        sim.launch_host_on_stream(mk(), StreamId(1));
        let r = sim.run().report;
        let k0_done = r.kernels[0].own_done_at.expect("done");
        let k1_start = r.kernels[1].first_dispatch.expect("dispatched");
        assert!(
            k1_start < k0_done,
            "independent streams should overlap: K1 at {k1_start}, K0 done {k0_done}"
        );
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use crate::work::WorkClass;

    #[test]
    #[should_panic(expected = "max_cycles")]
    fn runaway_guard_fires() {
        let mut cfg = GpuConfig::test_small();
        cfg.max_cycles = 50; // absurdly small budget
        let mut sim = Simulation::builder(cfg).build();
        sim.launch_host(KernelDesc {
            name: "busy".into(),
            cta_threads: 32,
            regs_per_thread: 8,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass::compute_only("busy", 50)),
            source: ThreadSource::Derived {
                origin: ThreadWork::with_items(32 * 100),
                items_per_thread: 100,
            },
            dp: None,
        });
        let _ = sim.run();
    }

    #[test]
    #[should_panic(expected = "invalid GPU configuration")]
    fn invalid_config_rejected_at_construction() {
        let mut cfg = GpuConfig::test_small();
        cfg.smx_count = 0;
        let _ = Simulation::builder(cfg).build();
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;

    /// The recycled-buffer free-lists must stop growing at [`POOL_CAP`]:
    /// a burst that retires more warps/CTAs than the cap drops the
    /// excess buffers instead of pinning them for the rest of the run.
    #[test]
    fn buffer_pools_are_bounded() {
        let mut sim = Simulation::builder(GpuConfig::test_small()).build();
        for i in 0..2 * POOL_CAP {
            let mut mem = std::collections::VecDeque::with_capacity(4);
            mem.push_back(Cycle(i as u64));
            sim.recycle_mem_buf(&mut mem);
            sim.recycle_lane_buf(vec![ThreadWork::with_items(1); 4]);
        }
        assert_eq!(sim.warp_mem_pool.len(), POOL_CAP);
        assert_eq!(sim.lane_pool.len(), POOL_CAP);
        // Recycled buffers come back empty, ready for reuse.
        assert!(sim.warp_mem_pool.iter().all(|b| b.is_empty()));
        assert!(sim.lane_pool.iter().all(|b| b.is_empty()));
    }
}

#[cfg(test)]
mod nesting_tests {
    use super::*;
    use crate::work::WorkClass;

    struct LaunchAll;
    impl LaunchController for LaunchAll {
        fn name(&self) -> &str {
            "la"
        }
        fn decide(&mut self, _r: &ChildRequest) -> LaunchDecision {
            LaunchDecision::Kernel
        }
    }

    /// A self-similar spec: children carry the same nested spec, so an
    /// unbounded launch-everything policy would recurse forever without
    /// the depth limit.
    fn recursive_spec(levels: u8) -> Arc<DpSpec> {
        let mut spec = Arc::new(DpSpec {
            child_class: Arc::new(WorkClass::compute_only("leaf", 4)),
            child_cta_threads: 32,
            child_items_per_thread: 32,
            child_regs_per_thread: 8,
            child_shmem_per_cta: 0,
            min_items: 32,
            default_threshold: 0,
            nested: None,
        });
        for _ in 0..levels {
            spec = Arc::new(DpSpec {
                child_class: Arc::new(WorkClass::compute_only("mid", 4)),
                child_cta_threads: 32,
                child_items_per_thread: 64,
                child_regs_per_thread: 8,
                child_shmem_per_cta: 0,
                min_items: 32,
                default_threshold: 0,
                nested: Some(spec),
            });
        }
        spec
    }

    fn run_with_depth_limit(limit: u8) -> SimReport {
        let mut cfg = GpuConfig::test_small();
        cfg.max_nesting_depth = limit;
        let mut sim = Simulation::builder(cfg)
            .controller(Box::new(LaunchAll))
            .build();
        sim.launch_host(KernelDesc {
            name: "nest".into(),
            cta_threads: 32,
            regs_per_thread: 8,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass::compute_only("root", 4)),
            source: ThreadSource::Explicit(vec![ThreadWork::with_items(256); 8].into()),
            dp: Some(recursive_spec(8)),
        });
        sim.run().report
    }

    #[test]
    fn nesting_depth_limit_caps_recursion() {
        let shallow = run_with_depth_limit(1);
        let deep = run_with_depth_limit(4);
        // Work is conserved either way.
        assert_eq!(shallow.items_total(), 8 * 256);
        assert_eq!(deep.items_total(), 8 * 256);
        // A deeper limit admits strictly more kernels.
        assert!(
            deep.child_kernels_launched > shallow.child_kernels_launched,
            "deep {} vs shallow {}",
            deep.child_kernels_launched,
            shallow.child_kernels_launched
        );
        // The deepest kernels respect the limit.
        let max_depth = deep.kernels.iter().map(|k| k.depth).max().unwrap_or(0);
        assert!(max_depth <= 4, "depth {max_depth} exceeds limit");
    }
}

#[cfg(test)]
mod artifact_tests {
    use super::*;
    use crate::work::WorkClass;
    use dynapar_engine::json::Json;

    /// Launches everything and logs a fake Eq. 1 prediction per decision,
    /// exercising the artifact's estimate-vs-actual pairing without
    /// depending on `dynapar-core`.
    struct PredictAll {
        preds: Vec<u64>,
    }

    impl LaunchController for PredictAll {
        fn name(&self) -> &str {
            "predict-all"
        }
        fn decide(&mut self, req: &ChildRequest) -> LaunchDecision {
            self.preds.push(20_210 + req.items as u64);
            LaunchDecision::Kernel
        }
        fn predictions(&self) -> Option<&[u64]> {
            Some(&self.preds)
        }
        fn export_metrics(&self, reg: &mut MetricsRegistry) {
            reg.counter("policy.decisions", self.preds.len() as u64);
        }
    }

    fn dp_kernel() -> KernelDesc {
        let threads: Vec<ThreadWork> = (0..64)
            .map(|t| ThreadWork {
                items: if t % 8 == 0 { 100 } else { 2 },
                seq_base: 0,
                rand_seed: t as u64,
            })
            .collect();
        KernelDesc {
            name: "artifact".into(),
            cta_threads: 64,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass::compute_only("p", 8)),
            source: ThreadSource::Explicit(threads.into()),
            dp: Some(Arc::new(DpSpec {
                child_class: Arc::new(WorkClass::compute_only("c", 8)),
                child_cta_threads: 32,
                child_items_per_thread: 1,
                child_regs_per_thread: 8,
                child_shmem_per_cta: 0,
                min_items: 8,
                default_threshold: 8,
                nested: None,
            })),
        }
    }

    fn run_at(level: MetricsLevel) -> RunOutcome {
        let mut sim = Simulation::builder(GpuConfig::test_small())
            .controller(Box::new(PredictAll { preds: Vec::new() }))
            .metrics(level)
            .trace(100_000)
            .build();
        sim.launch_host(dp_kernel());
        sim.run()
    }

    #[test]
    fn metrics_off_produces_no_artifact() {
        let out = run_at(MetricsLevel::Off);
        assert!(out.artifact.is_none());
        assert!(out.trace.is_some(), "trace is independent of metrics");
    }

    #[test]
    fn artifact_carries_every_section_and_round_trips() {
        let out = run_at(MetricsLevel::Full);
        let artifact = out.artifact.expect("metrics enabled");
        assert_eq!(artifact.level(), MetricsLevel::Full);

        // Byte-stable round trip through the in-house parser.
        let text = artifact.to_string();
        let back = RunArtifact::parse(&text).expect("self-emitted artifact parses");
        assert_eq!(back, artifact);
        assert_eq!(back.to_string(), text);

        let json = artifact.json();
        // Config echo.
        let cfg = json.get("config").expect("config section");
        assert_eq!(
            cfg.get("smx_count").unwrap().as_u64(),
            Some(GpuConfig::test_small().smx_count as u64)
        );
        // Report, without the nondeterministic wall-clock field.
        let report = json.get("report").expect("report section");
        assert!(report.get("wall_ms").is_none());
        assert_eq!(
            report.get("total_cycles").unwrap().as_u64(),
            Some(out.report.total_cycles)
        );
        assert_eq!(
            report.get("kernels").unwrap().as_array().unwrap().len(),
            out.report.kernels.len()
        );
        // Component metrics from the GMU, the SMXs, and the policy.
        let metrics = json.get("metrics").expect("metrics section");
        assert!(metrics.get("gmu.kernels_enqueued").unwrap().as_u64().unwrap() > 0);
        assert!(metrics.get("smx.ctas_executed").is_some());
        assert_eq!(
            metrics.get("policy.decisions").unwrap().as_u64(),
            Some(out.report.launch_requests)
        );
        // Trace export rides along.
        assert!(json.get("trace").unwrap().get("events").is_some());
    }

    #[test]
    fn ccqs_samples_pair_estimates_with_child_kernels() {
        let out = run_at(MetricsLevel::Summary);
        let artifact = out.artifact.expect("metrics enabled");
        let samples = artifact.ccqs_samples();
        assert_eq!(samples.len() as u64, out.report.child_kernels_launched);
        assert!(!samples.is_empty(), "workload must launch children");
        for s in &samples {
            let k = out
                .report
                .kernels
                .iter()
                .find(|k| k.id == s.kernel)
                .expect("sample references a real kernel");
            assert_eq!(k.role, KernelRole::Child);
            let actual = s.actual.expect("children completed");
            assert_eq!(actual, k.own_done_at.unwrap() - k.created_at);
            assert!(s.estimate > 20_210);
        }
    }

    #[test]
    fn summary_level_omits_bulk_sections() {
        let full = run_at(MetricsLevel::Full);
        let summary = run_at(MetricsLevel::Summary);
        let f = full.artifact.unwrap();
        let s = summary.artifact.unwrap();
        assert!(f.json().get("report").unwrap().get("timeline").is_some());
        assert!(s.json().get("report").unwrap().get("timeline").is_none());
        // Per-SMX entries only appear at Full.
        let has_per_smx = |a: &RunArtifact| {
            a.json()
                .get("metrics")
                .unwrap()
                .as_object()
                .unwrap()
                .iter()
                .any(|(k, _)| k.starts_with("smx.0."))
        };
        assert!(has_per_smx(&f));
        assert!(!has_per_smx(&s));
    }

    #[test]
    fn artifact_json_is_deterministic_across_runs() {
        let a = run_at(MetricsLevel::Full).artifact.unwrap().to_string();
        let b = run_at(MetricsLevel::Full).artifact.unwrap().to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn timeseries_level_adds_the_telemetry_section() {
        let out = run_at(MetricsLevel::Timeseries);
        let artifact = out.artifact.expect("metrics enabled");
        let ts = artifact.timeseries().expect("timeseries section");
        assert_eq!(
            ts.get("schema").unwrap().as_str(),
            Some(crate::telemetry::TIMESERIES_SCHEMA)
        );
        let series = ts.get("series").unwrap().as_array().unwrap();
        let names: Vec<&str> = series
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        for required in ["queue_depth", "n_con", "t_cta", "decisions_allowed"] {
            assert!(names.contains(&required), "missing series {required}");
        }
        // The run samples periodically, so the gauges carry data.
        let depth = series
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some("queue_depth"))
            .unwrap();
        assert!(depth.get("samples").unwrap().as_u64().unwrap() > 0);
        // Every launch decision lands in exactly one rate series.
        let total_of = |name: &str| -> u64 {
            series
                .iter()
                .find(|s| s.get("name").unwrap().as_str() == Some(name))
                .and_then(|s| s.get("values"))
                .and_then(Json::as_array)
                .map(|v| v.iter().filter_map(Json::as_u64).sum())
                .unwrap_or(0)
        };
        let counted = total_of("decisions_allowed")
            + total_of("decisions_denied")
            + total_of("decisions_deferred");
        assert_eq!(counted, out.report.launch_requests);
        // The section survives a parse round trip byte-for-byte.
        let text = artifact.to_string();
        let back = RunArtifact::parse(&text).expect("parses");
        assert_eq!(back.to_string(), text);
        assert!(back.timeseries().is_some());
    }

    #[test]
    fn lower_levels_omit_the_telemetry_section() {
        for level in [MetricsLevel::Summary, MetricsLevel::Full] {
            let artifact = run_at(level).artifact.unwrap();
            assert!(
                artifact.timeseries().is_none(),
                "level {level:?} must not carry timeseries"
            );
            assert!(!artifact.to_string().contains("\"timeseries\""));
        }
    }

    #[test]
    fn timeseries_report_matches_full_report() {
        // Timeseries is "Full plus telemetry": the report and metrics
        // sections are identical between the two levels except for the
        // level tag itself and the extra section.
        let f = run_at(MetricsLevel::Full).artifact.unwrap();
        let t = run_at(MetricsLevel::Timeseries).artifact.unwrap();
        assert_eq!(
            f.json().get("report").unwrap(),
            t.json().get("report").unwrap()
        );
        assert_eq!(
            f.json().get("metrics").unwrap(),
            t.json().get("metrics").unwrap()
        );
    }

    #[test]
    fn over_capacity_trace_reports_drops_in_artifact() {
        let mut sim = Simulation::builder(GpuConfig::test_small())
            .controller(Box::new(PredictAll { preds: Vec::new() }))
            .metrics(MetricsLevel::Summary)
            .trace(4)
            .build();
        sim.launch_host(dp_kernel());
        let out = sim.run();
        let trace = out.trace.as_ref().expect("tracing enabled");
        assert!(trace.dropped() > 0, "workload must overflow 4 slots");
        let json = out.artifact.expect("metrics enabled");
        let t = json.json().get("trace").expect("trace section");
        assert_eq!(t.get("events").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(t.get("capacity").unwrap().as_u64(), Some(4));
        assert_eq!(t.get("dropped").unwrap().as_u64(), Some(trace.dropped()));
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use crate::work::WorkClass;

    /// Stateful launch-everything policy: the predictions vector makes
    /// the artifact's `ccqs_samples` depend on the decide sequence, so a
    /// resumed run only matches if the controller replay is exact.
    struct PredictAll {
        preds: Vec<u64>,
    }

    impl LaunchController for PredictAll {
        fn name(&self) -> &str {
            "predict-all"
        }
        fn decide(&mut self, req: &ChildRequest) -> LaunchDecision {
            self.preds.push(20_210 + req.items as u64);
            LaunchDecision::Kernel
        }
        fn predictions(&self) -> Option<&[u64]> {
            Some(&self.preds)
        }
        fn export_metrics(&self, reg: &mut MetricsRegistry) {
            reg.counter("policy.decisions", self.preds.len() as u64);
        }
    }

    fn launcher() -> Box<dyn LaunchController> {
        Box::new(PredictAll { preds: Vec::new() })
    }

    fn dp_kernel() -> KernelDesc {
        let threads: Vec<ThreadWork> = (0..64)
            .map(|t| ThreadWork {
                items: if t % 8 == 0 { 80 } else { 2 },
                seq_base: 64 * t as u64,
                rand_seed: t as u64,
            })
            .collect();
        KernelDesc {
            name: "snap".into(),
            cta_threads: 64,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass {
                label: "snap-p",
                compute_per_item: 8,
                init_cycles: 20,
                seq_bytes_per_item: 8,
                rand_refs_per_item: 1,
                rand_region_base: 1 << 30,
                rand_region_bytes: 1 << 20,
                writes_per_item: 1,
            }),
            source: ThreadSource::Explicit(threads.into()),
            dp: Some(Arc::new(DpSpec {
                child_class: Arc::new(WorkClass::compute_only("snap-c", 8)),
                child_cta_threads: 32,
                child_items_per_thread: 1,
                child_regs_per_thread: 8,
                child_shmem_per_cta: 0,
                min_items: 8,
                default_threshold: 8,
                nested: None,
            })),
        }
    }

    fn cold_run(level: MetricsLevel) -> RunOutcome {
        let mut sim = Simulation::builder(GpuConfig::test_small())
            .controller(launcher())
            .metrics(level)
            .build();
        sim.launch_host(dp_kernel());
        sim.run()
    }

    fn armed_run(level: MetricsLevel, at: u64) -> RunOutcome {
        let mut sim = Simulation::builder(GpuConfig::test_small())
            .controller(launcher())
            .metrics(level)
            .snapshot_at(at)
            .build();
        sim.launch_host(dp_kernel());
        sim.run()
    }

    #[test]
    fn armed_run_is_byte_identical_and_resume_continues_it() {
        for level in [MetricsLevel::Full, MetricsLevel::Timeseries] {
            let cold = cold_run(level);
            let cold_art = cold.artifact.as_ref().unwrap().to_string();
            for at in [0, cold.report.total_cycles / 2] {
                let out = armed_run(level, at);
                assert_eq!(
                    out.artifact.unwrap().to_string(),
                    cold_art,
                    "arming a snapshot must not change the run (at={at})"
                );
                let snap = out.snapshot.expect("snapshot captured");
                let resumed = Simulation::builder(GpuConfig::test_small())
                    .controller(launcher())
                    .metrics(level)
                    .build_resumed(&snap)
                    .expect("valid snapshot");
                let back = resumed.run();
                assert_eq!(
                    back.artifact.unwrap().to_string(),
                    cold_art,
                    "resumed artifact must match the uninterrupted run (at={at})"
                );
                assert_eq!(back.report.total_cycles, cold.report.total_cycles);
            }
        }
    }

    #[test]
    fn resume_on_parallel_backend_matches() {
        let cold = cold_run(MetricsLevel::Full);
        let cold_art = cold.artifact.as_ref().unwrap().to_string();
        let snap = armed_run(MetricsLevel::Full, cold.report.total_cycles / 2)
            .snapshot
            .unwrap();
        let resumed = Simulation::builder(GpuConfig::test_small())
            .controller(launcher())
            .metrics(MetricsLevel::Full)
            .backend(SimBackend::Par(2))
            .build_resumed(&snap)
            .expect("valid snapshot");
        assert_eq!(resumed.run().artifact.unwrap().to_string(), cold_art);
    }

    #[test]
    fn chained_snapshots_preserve_the_replay_history() {
        let cold = cold_run(MetricsLevel::Full);
        let cold_art = cold.artifact.as_ref().unwrap().to_string();
        let third = cold.report.total_cycles / 3;
        let snap1 = armed_run(MetricsLevel::Full, third).snapshot.unwrap();
        let resumed = Simulation::builder(GpuConfig::test_small())
            .controller(launcher())
            .metrics(MetricsLevel::Full)
            .snapshot_at(2 * third)
            .build_resumed(&snap1)
            .expect("valid snapshot");
        let out = resumed.run();
        assert_eq!(out.artifact.unwrap().to_string(), cold_art);
        let snap2 = out.snapshot.expect("second snapshot captured");
        let resumed2 = Simulation::builder(GpuConfig::test_small())
            .controller(launcher())
            .metrics(MetricsLevel::Full)
            .build_resumed(&snap2)
            .expect("valid chained snapshot");
        assert_eq!(resumed2.run().artifact.unwrap().to_string(), cold_art);
    }

    #[test]
    fn pristine_snapshot_resumes_under_a_different_policy() {
        // Cycle 0 precedes every launch decision, so the ramp is
        // policy-independent and the fork may switch controllers.
        let snap = armed_run(MetricsLevel::Summary, 0).snapshot.unwrap();
        let job = crate::snap::parse_snapshot(&snap).unwrap().0;
        assert_eq!(job.get("pristine").and_then(Json::as_bool), Some(true));
        let forked = Simulation::builder(GpuConfig::test_small())
            .metrics(MetricsLevel::Summary)
            .build_resumed(&snap)
            .expect("pristine cross-policy resume");
        let flat = forked.run();
        let mut cold_flat = Simulation::builder(GpuConfig::test_small())
            .metrics(MetricsLevel::Summary)
            .build();
        cold_flat.launch_host(dp_kernel());
        assert_eq!(
            flat.artifact.unwrap().to_string(),
            cold_flat.run().artifact.unwrap().to_string()
        );
    }

    #[test]
    fn non_pristine_snapshot_rejects_other_policies() {
        let cold = cold_run(MetricsLevel::Summary);
        let snap = armed_run(MetricsLevel::Summary, cold.report.total_cycles / 2)
            .snapshot
            .unwrap();
        let job = crate::snap::parse_snapshot(&snap).unwrap().0;
        assert_eq!(job.get("pristine").and_then(Json::as_bool), Some(false));
        let err = Simulation::builder(GpuConfig::test_small())
            .metrics(MetricsLevel::Summary)
            .build_resumed(&snap)
            .err()
            .expect("cross-policy resume of a non-pristine snapshot");
        assert!(err.to_string().contains("pristine"), "{err}");
    }

    #[test]
    fn resume_validates_config_metrics_and_integrity() {
        let cold = cold_run(MetricsLevel::Summary);
        let snap = armed_run(MetricsLevel::Summary, cold.report.total_cycles / 2)
            .snapshot
            .unwrap();
        // Different hardware configuration.
        let err = Simulation::builder(GpuConfig::kepler_k20m())
            .controller(launcher())
            .metrics(MetricsLevel::Summary)
            .build_resumed(&snap)
            .err()
            .expect("config mismatch");
        assert!(err.to_string().contains("configuration"), "{err}");
        // Different metrics level.
        let err = Simulation::builder(GpuConfig::test_small())
            .controller(launcher())
            .metrics(MetricsLevel::Full)
            .build_resumed(&snap)
            .err()
            .expect("metrics mismatch");
        assert!(err.to_string().contains("metrics"), "{err}");
        // Tracing is unsupported on resumed runs.
        assert!(Simulation::builder(GpuConfig::test_small())
            .controller(launcher())
            .metrics(MetricsLevel::Summary)
            .trace(1000)
            .build_resumed(&snap)
            .is_err());
        // Truncation and corruption are rejected by the container layer.
        assert!(Simulation::builder(GpuConfig::test_small())
            .controller(launcher())
            .metrics(MetricsLevel::Summary)
            .build_resumed(&snap[..snap.len() - 7])
            .is_err());
        let mut bad = snap.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(Simulation::builder(GpuConfig::test_small())
            .controller(launcher())
            .metrics(MetricsLevel::Summary)
            .build_resumed(&bad)
            .is_err());
    }

    #[test]
    fn run_finishing_before_the_cycle_yields_no_snapshot() {
        let out = armed_run(MetricsLevel::Summary, u64::MAX);
        assert!(out.snapshot.is_none());
    }

    #[test]
    fn snapshot_meta_lands_in_the_header() {
        let mut sim = Simulation::builder(GpuConfig::test_small())
            .controller(launcher())
            .metrics(MetricsLevel::Summary)
            .snapshot_at(0)
            .snapshot_meta(Json::obj([("tag", Json::str("warm-42"))]))
            .build();
        sim.launch_host(dp_kernel());
        let snap = sim.run().snapshot.unwrap();
        let job = crate::snap::parse_snapshot(&snap).unwrap().0;
        assert_eq!(
            job.get("meta").and_then(|m| m.get("tag")).and_then(Json::as_str),
            Some("warm-42")
        );
        assert!(job.get("cycle").and_then(Json::as_u64).is_some());
        assert!(job.get("controller").and_then(Json::as_str).is_some());
    }

    #[test]
    #[should_panic(expected = "snapshots do not support tracing")]
    fn arming_a_snapshot_with_tracing_panics() {
        let _ = Simulation::builder(GpuConfig::test_small())
            .trace(1000)
            .snapshot_at(5)
            .build();
    }

    #[test]
    fn watch_hook_sees_samples_and_stays_byte_invisible() {
        let cold = cold_run(MetricsLevel::Full);
        let cold_art = cold.artifact.as_ref().unwrap().to_string();
        let samples = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = samples.clone();
        let mut sim = Simulation::builder(GpuConfig::test_small())
            .controller(launcher())
            .metrics(MetricsLevel::Full)
            .watch(std::sync::Arc::new(move |s: WatchSample| {
                sink.lock().unwrap().push(s);
            }))
            .build();
        sim.launch_host(dp_kernel());
        let out = sim.run();
        assert_eq!(out.artifact.unwrap().to_string(), cold_art);
        let seen = samples.lock().unwrap();
        assert!(!seen.is_empty(), "hook never fired");
        for w in seen.windows(2) {
            assert!(w[0].now < w[1].now, "samples must be time-ordered");
        }
        assert!(
            seen.iter().any(|s| s.parent_ctas > 0 || s.utilization > 0.0),
            "samples should observe a busy device"
        );
    }
}
