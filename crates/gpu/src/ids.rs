//! Strongly-typed identifiers for simulator entities.
//!
//! Newtypes keep kernel/SMX/stream/HWQ indices from being mixed up
//! (C-NEWTYPE): a [`KernelId`] can never be passed where an [`SmxId`] is
//! expected, even though both are small integers underneath.

use std::fmt;

/// Identifies a kernel instance (host-launched parent, device-launched
/// child, or DTBL aggregation kernel) within one simulation run.
///
/// Ids are dense indices into the simulator's kernel table, assigned in
/// creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub u32);

impl KernelId {
    /// Index into the simulator's kernel table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{}", self.0)
    }
}

/// Identifies one streaming multiprocessor (SMX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SmxId(pub u8);

impl SmxId {
    /// Index into the simulator's SMX array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SmxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SMX{}", self.0)
    }
}

/// A software-managed work queue (SWQ) id — `cudaStream_t` in CUDA terms.
///
/// Kernels sharing a `StreamId` execute sequentially; kernels on different
/// streams may run concurrently if mapped to different hardware work queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u32);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A hardware work queue (HWQ) slot in the Grid Management Unit.
///
/// Kepler-class GPUs expose 32 of these; the number of concurrently
/// executing kernels is bounded by the HWQ count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HwqId(pub u8);

impl HwqId {
    /// Index into the GMU's HWQ array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HwqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HWQ{}", self.0)
    }
}

/// Locates a CTA within a kernel (`kernel`, `index` within the grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtaKey {
    /// Owning kernel.
    pub kernel: KernelId,
    /// CTA index within the kernel's grid.
    pub index: u32,
}

impl fmt::Display for CtaKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.cta{}", self.kernel, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_distinctly() {
        assert_eq!(KernelId(3).to_string(), "K3");
        assert_eq!(SmxId(1).to_string(), "SMX1");
        assert_eq!(StreamId(9).to_string(), "S9");
        assert_eq!(HwqId(0).to_string(), "HWQ0");
        let cta = CtaKey {
            kernel: KernelId(2),
            index: 5,
        };
        assert_eq!(cta.to_string(), "K2.cta5");
    }

    #[test]
    fn ids_index_roundtrip() {
        assert_eq!(KernelId(42).index(), 42);
        assert_eq!(SmxId(12).index(), 12);
        assert_eq!(HwqId(31).index(), 31);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        assert!(KernelId(1) < KernelId(2));
        let mut set = HashSet::new();
        set.insert(StreamId(1));
        set.insert(StreamId(1));
        assert_eq!(set.len(), 1);
    }
}
