//! The Grid Management Unit: pending-kernel pool, SWQ→HWQ mapping, and
//! head-of-line kernel selection (§II-C, Fig. 4).

use std::collections::VecDeque;

use dynapar_engine::metrics::MetricsRegistry;
use dynapar_engine::snap::{ByteReader, ByteWriter, SnapError};

use crate::ids::{HwqId, KernelId, StreamId};

/// Sentinel in the dense stream table: stream not yet assigned an HWQ.
/// Entries are `u16` (not `HwqId`'s `u8`) so the sentinel stays distinct
/// even when `num_hwqs > 256` puts every `u8` value in use.
const UNMAPPED: u16 = u16::MAX;

/// Grid Management Unit state.
///
/// Kernels arrive tagged with a software work queue (stream) id; streams
/// are mapped round-robin onto the fixed set of hardware work queues.
/// Within one HWQ kernels are FIFO, and only the head kernel may dispatch
/// CTAs — which is exactly why at most `num_hwqs` (32 on Kepler) kernels
/// execute concurrently, the hardware limit at the heart of the paper's
/// queuing-latency argument.
#[derive(Debug)]
pub(crate) struct Gmu {
    hwqs: Vec<VecDeque<KernelId>>,
    /// Dense stream→HWQ table indexed by stream id. The simulator hands
    /// out stream ids sequentially, so the table stays as small as the
    /// stream count and a lookup is one bounds check plus a load — this
    /// sits on the per-child-launch path, where the previous `HashMap`
    /// lookup was measurable.
    stream_map: Vec<u16>,
    /// Streams that have been assigned an HWQ (== mapped table entries).
    streams_mapped: u64,
    assign_counter: u32,
    rr_hwq: usize,
    /// Kernels currently resident in the pool (arrived, not own-complete).
    pending: u32,
    max_pending_seen: u32,
    /// Lifetime count of kernels ever enqueued (host + child).
    kernels_enqueued: u64,
    /// Lifetime count of DTBL aggregation kernels registered.
    aggregated_registered: u64,
    /// DTBL aggregation kernels with directly dispatchable CTAs.
    agg_kernels: Vec<KernelId>,
}

impl Gmu {
    pub fn new(num_hwqs: u32) -> Self {
        assert!(num_hwqs > 0, "need at least one HWQ");
        Gmu {
            hwqs: (0..num_hwqs).map(|_| VecDeque::new()).collect(),
            stream_map: Vec::new(),
            streams_mapped: 0,
            assign_counter: 0,
            rr_hwq: 0,
            pending: 0,
            max_pending_seen: 0,
            kernels_enqueued: 0,
            aggregated_registered: 0,
            agg_kernels: Vec::new(),
        }
    }

    /// HWQ that services `stream`, assigning one round-robin on first use.
    pub fn hwq_of(&mut self, stream: StreamId) -> HwqId {
        let idx = stream.0 as usize;
        // Stream ids are sequential by construction (the simulator's
        // `next_stream` counter; aggregation pseudo-streams never reach
        // the HWQs), so growing a dense table is bounded by the stream
        // count. Catch accidental sparse ids before they allocate.
        debug_assert!(idx < 1 << 24, "stream ids must stay dense");
        if idx >= self.stream_map.len() {
            self.stream_map.resize(idx + 1, UNMAPPED);
        }
        let slot = &mut self.stream_map[idx];
        if *slot == UNMAPPED {
            // `as u8` truncation matches the original assignment exactly
            // (HwqId is a u8); with >256 HWQs only the low 256 are ever
            // addressed, same as before this table existed.
            *slot = ((self.assign_counter % self.hwqs.len() as u32) as u8) as u16;
            self.assign_counter += 1;
            self.streams_mapped += 1;
        }
        HwqId(*slot as u8)
    }

    /// Enqueues an arrived kernel on its stream's HWQ.
    pub fn enqueue(&mut self, kernel: KernelId, stream: StreamId) {
        let h = self.hwq_of(stream);
        self.hwqs[h.index()].push_back(kernel);
        self.pending += 1;
        self.kernels_enqueued += 1;
        self.max_pending_seen = self.max_pending_seen.max(self.pending);
    }

    /// Registers a DTBL aggregation kernel (bypasses HWQs).
    pub fn register_aggregated(&mut self, kernel: KernelId) {
        self.aggregated_registered += 1;
        self.agg_kernels.push(kernel);
    }

    /// Removes an own-complete kernel from the head of its HWQ, unblocking
    /// the next kernel in that queue.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is not at the head of its stream's HWQ — only
    /// executing (head) kernels can complete.
    pub fn kernel_complete(&mut self, kernel: KernelId, stream: StreamId) {
        let h = self.hwq_of(stream);
        let q = &mut self.hwqs[h.index()];
        assert_eq!(
            q.front().copied(),
            Some(kernel),
            "completed kernel must be its HWQ's head"
        );
        q.pop_front();
        self.pending -= 1;
    }

    /// Removes a finished aggregation kernel from the direct-dispatch list.
    pub fn aggregated_complete(&mut self, kernel: KernelId) {
        self.agg_kernels.retain(|&k| k != kernel);
    }

    /// Kernels eligible to dispatch CTAs right now: each HWQ's head
    /// (rotated for round-robin fairness) plus all aggregation kernels.
    ///
    /// Clears and fills `out` so the caller can reuse one buffer across
    /// dispatch rounds. Each call advances the round-robin rotation, so
    /// call it exactly once per dispatch round.
    pub fn dispatch_candidates_into(&mut self, out: &mut Vec<KernelId>) {
        out.clear();
        let n = self.hwqs.len();
        for i in 0..n {
            let q = &self.hwqs[(self.rr_hwq + i) % n];
            if let Some(&head) = q.front() {
                out.push(head);
            }
        }
        self.rr_hwq = (self.rr_hwq + 1) % n;
        out.extend(self.agg_kernels.iter().copied());
    }

    /// Allocating convenience wrapper around
    /// [`dispatch_candidates_into`](Gmu::dispatch_candidates_into).
    #[cfg(test)]
    pub fn dispatch_candidates(&mut self) -> Vec<KernelId> {
        let mut out = Vec::new();
        self.dispatch_candidates_into(&mut out);
        out
    }

    /// Number of kernels currently in the pool.
    pub fn pending(&self) -> u32 {
        self.pending
    }

    /// High-water mark of pool occupancy.
    pub fn max_pending_seen(&self) -> u32 {
        self.max_pending_seen
    }

    /// Number of kernels currently *executing or executable* — i.e. HWQ
    /// heads (the "concurrent kernels" the 32-HWQ limit caps).
    pub fn concurrent_kernels(&self) -> u32 {
        self.hwqs.iter().filter(|q| !q.is_empty()).count() as u32
    }

    /// Serializes the full GMU state: every HWQ's kernel FIFO, the
    /// stream→HWQ table, round-robin cursors, pool occupancy, and the
    /// lifetime counters.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_len(self.hwqs.len());
        for q in &self.hwqs {
            w.put_len(q.len());
            for &k in q {
                w.put_u32(k.0);
            }
        }
        w.put_len(self.stream_map.len());
        for &slot in &self.stream_map {
            w.put_u32(slot as u32);
        }
        w.put_u64(self.streams_mapped);
        w.put_u32(self.assign_counter);
        w.put_u64(self.rr_hwq as u64);
        w.put_u32(self.pending);
        w.put_u32(self.max_pending_seen);
        w.put_u64(self.kernels_enqueued);
        w.put_u64(self.aggregated_registered);
        w.put_len(self.agg_kernels.len());
        for &k in &self.agg_kernels {
            w.put_u32(k.0);
        }
    }

    /// Restores [`encode_state`](Gmu::encode_state) bytes into a GMU
    /// built with the same HWQ count.
    ///
    /// # Errors
    ///
    /// Rejects an HWQ count that differs from this GMU's configuration.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), SnapError> {
        if r.get_len()? != self.hwqs.len() {
            return Err(SnapError::Invalid("HWQ count differs from config"));
        }
        for q in &mut self.hwqs {
            let n = r.get_len()?;
            q.clear();
            for _ in 0..n {
                q.push_back(KernelId(r.get_u32()?));
            }
        }
        let n = r.get_len()?;
        self.stream_map.clear();
        for _ in 0..n {
            self.stream_map.push(r.get_u32()? as u16);
        }
        self.streams_mapped = r.get_u64()?;
        self.assign_counter = r.get_u32()?;
        self.rr_hwq = r.get_u64()? as usize;
        self.pending = r.get_u32()?;
        self.max_pending_seen = r.get_u32()?;
        self.kernels_enqueued = r.get_u64()?;
        self.aggregated_registered = r.get_u64()?;
        let n = r.get_len()?;
        self.agg_kernels.clear();
        for _ in 0..n {
            self.agg_kernels.push(KernelId(r.get_u32()?));
        }
        Ok(())
    }

    /// Contributes `gmu.*` entries to the run artifact's registry.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter("gmu.kernels_enqueued", self.kernels_enqueued);
        reg.counter("gmu.aggregated_registered", self.aggregated_registered);
        reg.counter("gmu.max_pending_kernels", self.max_pending_seen as u64);
        reg.counter("gmu.streams_mapped", self.streams_mapped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_map_round_robin() {
        let mut g = Gmu::new(4);
        let h0 = g.hwq_of(StreamId(10));
        let h1 = g.hwq_of(StreamId(11));
        let h2 = g.hwq_of(StreamId(12));
        let h3 = g.hwq_of(StreamId(13));
        let h4 = g.hwq_of(StreamId(14));
        assert_eq!([h0.0, h1.0, h2.0, h3.0], [0, 1, 2, 3]);
        assert_eq!(h4.0, 0, "wraps after num_hwqs streams");
        // Stable on re-query.
        assert_eq!(g.hwq_of(StreamId(10)), h0);
    }

    #[test]
    fn same_stream_kernels_serialize() {
        let mut g = Gmu::new(2);
        g.enqueue(KernelId(1), StreamId(7));
        g.enqueue(KernelId(2), StreamId(7));
        let cands = g.dispatch_candidates();
        assert!(cands.contains(&KernelId(1)));
        assert!(!cands.contains(&KernelId(2)), "K2 blocked behind K1");
        g.kernel_complete(KernelId(1), StreamId(7));
        let cands = g.dispatch_candidates();
        assert!(cands.contains(&KernelId(2)));
    }

    #[test]
    fn different_streams_run_concurrently() {
        let mut g = Gmu::new(4);
        g.enqueue(KernelId(1), StreamId(1));
        g.enqueue(KernelId(2), StreamId(2));
        let cands = g.dispatch_candidates();
        assert!(cands.contains(&KernelId(1)) && cands.contains(&KernelId(2)));
        assert_eq!(g.concurrent_kernels(), 2);
    }

    #[test]
    fn hwq_limit_caps_concurrency() {
        let mut g = Gmu::new(2);
        for i in 0..10 {
            g.enqueue(KernelId(i), StreamId(i));
        }
        // Ten kernels, ten distinct streams, but only 2 HWQs -> 2 heads.
        assert_eq!(g.dispatch_candidates().len(), 2);
        assert_eq!(g.concurrent_kernels(), 2);
        assert_eq!(g.pending(), 10);
        assert_eq!(g.max_pending_seen(), 10);
    }

    #[test]
    fn pool_occupancy_tracking() {
        let mut g = Gmu::new(2);
        for i in 0..3 {
            g.enqueue(KernelId(i), StreamId(i));
        }
        assert_eq!(g.pending(), 3);
        assert_eq!(g.max_pending_seen(), 3);
        g.kernel_complete(KernelId(0), StreamId(0));
        assert_eq!(g.pending(), 2);
        assert_eq!(g.max_pending_seen(), 3);
    }

    #[test]
    fn rr_rotates_candidate_order() {
        let mut g = Gmu::new(3);
        g.enqueue(KernelId(0), StreamId(0));
        g.enqueue(KernelId(1), StreamId(1));
        g.enqueue(KernelId(2), StreamId(2));
        let first = g.dispatch_candidates();
        let second = g.dispatch_candidates();
        assert_ne!(first, second, "rotation changes priority order");
        assert_eq!(first.len(), 3);
    }

    #[test]
    fn aggregated_kernels_always_candidates() {
        let mut g = Gmu::new(2);
        g.register_aggregated(KernelId(9));
        assert!(g.dispatch_candidates().contains(&KernelId(9)));
        g.aggregated_complete(KernelId(9));
        assert!(!g.dispatch_candidates().contains(&KernelId(9)));
    }

    #[test]
    fn metrics_export_counts_traffic() {
        use dynapar_engine::metrics::{MetricsLevel, MetricsRegistry};
        let mut g = Gmu::new(2);
        g.enqueue(KernelId(0), StreamId(0));
        g.enqueue(KernelId(1), StreamId(1));
        g.kernel_complete(KernelId(0), StreamId(0));
        g.register_aggregated(KernelId(9));
        let mut reg = MetricsRegistry::new(MetricsLevel::Summary);
        g.export_metrics(&mut reg);
        let json = reg.to_json();
        assert_eq!(json.get("gmu.kernels_enqueued").unwrap().as_u64(), Some(2));
        assert_eq!(
            json.get("gmu.aggregated_registered").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            json.get("gmu.max_pending_kernels").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(json.get("gmu.streams_mapped").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn state_round_trips_through_snapshot_bytes() {
        let mut g = Gmu::new(3);
        for i in 0..5 {
            g.enqueue(KernelId(i), StreamId(i % 2));
        }
        g.register_aggregated(KernelId(9));
        g.kernel_complete(KernelId(0), StreamId(0));
        g.dispatch_candidates(); // advance the round-robin cursor

        let mut w = ByteWriter::new();
        g.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut back = Gmu::new(3);
        let mut r = ByteReader::new(&bytes);
        back.decode_state(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(back.pending(), g.pending());
        assert_eq!(back.max_pending_seen(), g.max_pending_seen());
        assert_eq!(back.concurrent_kernels(), g.concurrent_kernels());
        // Same candidate rotation, same stream mapping.
        assert_eq!(back.dispatch_candidates(), g.dispatch_candidates());
        assert_eq!(back.hwq_of(StreamId(7)), g.hwq_of(StreamId(7)));
        assert_eq!(back.dispatch_candidates(), g.dispatch_candidates());
    }

    #[test]
    fn decode_rejects_wrong_hwq_count() {
        let mut w = ByteWriter::new();
        Gmu::new(3).encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = Gmu::new(4);
        let mut r = ByteReader::new(&bytes);
        assert!(other.decode_state(&mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "head")]
    fn completing_non_head_panics() {
        let mut g = Gmu::new(1);
        g.enqueue(KernelId(1), StreamId(1));
        g.enqueue(KernelId(2), StreamId(2)); // same HWQ (only one)
        g.kernel_complete(KernelId(2), StreamId(2));
    }
}
