//! # dynapar-gpu
//!
//! An event-driven GPU performance simulator with first-class support for
//! **dynamic parallelism** (device-side kernel launch), built to reproduce
//! *Controlled Kernel Launch for Dynamic Parallelism in GPUs* (HPCA 2017).
//!
//! ## What is modeled
//!
//! * **SMXs** with the Table II limits: resident threads/warps/CTAs,
//!   register file and shared memory capacity, a dual-issue warp scheduler
//!   (GTO or round-robin).
//! * **The Grid Management Unit**: a pending-kernel pool, software work
//!   queues (streams) mapped onto 32 hardware work queues, head-of-line
//!   kernel dispatch, and a round-robin CTA scheduler.
//! * **Device-side kernel launch** with the measured overhead model
//!   `latency = A·x + b` (A = 1721, b = 20210 cycles), parent-child
//!   synchronization, and nested launches.
//! * **DTBL aggregation** (Wang et al., ISCA'15) as an alternative launch
//!   path: child CTAs coalesce onto an aggregation kernel, skipping kernel
//!   launch overhead but still competing for the concurrent-CTA limit.
//! * **A memory hierarchy**: per-SMX L1D, a 12-partition L2, a crossbar,
//!   and open-row DRAM channels, fed by a warp-level access coalescer.
//!
//! ## The work model
//!
//! Threads execute *work items* (loop iterations) described by a
//! [`WorkClass`]; a warp runs as many rounds as its heaviest lane has
//! items, reproducing SIMD-divergence-induced workload imbalance. See
//! [`work`] for details.
//!
//! ## Plugging in a launch policy
//!
//! The simulator delegates every device-launch decision to a
//! [`LaunchController`]. The SPAWN runtime and all baseline policies live
//! in the `dynapar-core` crate; [`InlineAll`] (never launch — the *flat*
//! program) ships here as the null policy.
//!
//! ## Observability
//!
//! Simulations are assembled through [`Simulation::builder`]: pick the
//! config, the controller, and opt into tracing and metrics. A run
//! returns a [`RunOutcome`]; with metrics enabled it carries a
//! [`RunArtifact`] — a deterministic JSON record (config echo, report,
//! component metrics, CCQS estimate-vs-actual samples, decision trace)
//! emitted and re-parsed by the in-house [`dynapar_engine::json`] tree.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use dynapar_gpu::{
//!     GpuConfig, InlineAll, KernelDesc, MetricsLevel, Simulation, ThreadSource, ThreadWork,
//!     WorkClass,
//! };
//!
//! // 8192 threads' worth of items, 8 items per thread, pure compute.
//! let mut sim = Simulation::builder(GpuConfig::test_small())
//!     .controller(Box::new(InlineAll))
//!     .metrics(MetricsLevel::Summary)
//!     .build();
//! sim.launch_host(KernelDesc {
//!     name: "quick".into(),
//!     cta_threads: 128,
//!     regs_per_thread: 16,
//!     shmem_per_cta: 0,
//!     class: Arc::new(WorkClass::compute_only("quick", 8)),
//!     source: ThreadSource::Derived {
//!         origin: ThreadWork::with_items(8 * 1024),
//!         items_per_thread: 8,
//!     },
//!     dp: None,
//! });
//! let outcome = sim.run();
//! assert_eq!(outcome.report.items_total(), 8 * 1024);
//! let artifact = outcome.artifact.expect("metrics were enabled");
//! assert!(artifact.to_string().contains("\"schema\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
pub mod config;
mod controller;
mod gmu;
mod ids;
mod kernel;
pub mod mem;
pub mod perfetto;
mod profile;
mod shard;
mod sim;
pub mod snap;
mod smx;
mod stats;
mod telemetry;
pub mod trace;
pub mod work;

pub use artifact::{ArtifactError, CcqsSample, RunArtifact, RunOutcome, ARTIFACT_SCHEMA};
pub use config::{
    canonical_json_hash, CanonicalConfig, CtaPlacement, GpuConfig, LaunchOverheadModel,
    MemConfig, SchedulerKind, StreamPolicy, CANONICAL_CONFIG_SCHEMA,
};
pub use controller::{
    ChildRequest, ControllerEvent, InlineAll, LaunchController, LaunchDecision,
    MonitoredMetrics,
};
pub use dynapar_engine::json::Json;
pub use dynapar_engine::metrics::{MetricsLevel, MetricsRegistry};
pub use dynapar_engine::QueueBackend;
pub use ids::{CtaKey, HwqId, KernelId, SmxId, StreamId};
pub use dynapar_engine::snap::SnapError;
pub use sim::{
    SimBackend, SimWindow, Simulation, SimulationBuilder, WatchHook, WatchSample, WinStats,
    AUTO_WINDOW_CAP,
};
pub use snap::{diff_snapshots, parse_snapshot, write_snapshot, SNAPSHOT_SCHEMA};
pub use stats::{KernelRole, KernelSummary, SimReport, TimelineSample};
pub use telemetry::TIMESERIES_SCHEMA;
pub use trace::{Trace, TraceEvent};
pub use work::{DpSpec, KernelDesc, ThreadSource, ThreadWork, WorkClass};
