//! Warp-level memory-access coalescing.

/// Coalesces a warp's per-lane byte addresses into unique cache-line ids.
///
/// GPUs service one memory transaction per distinct cache line touched by
/// a warp instruction; 32 lanes reading consecutive words collapse into a
/// single 128-byte transaction, while 32 scattered lookups generate up to
/// 32. The coalescer sorts and deduplicates in place to keep the hot path
/// allocation-free (the caller owns and reuses the buffer).
///
/// # Examples
///
/// ```
/// use dynapar_gpu::mem::coalesce_lines;
///
/// // Four lanes in the same 128B line -> one transaction.
/// let mut addrs = vec![0u64, 4, 64, 124];
/// coalesce_lines(&mut addrs, 128);
/// assert_eq!(addrs, vec![0]);
///
/// // Strided lanes -> one transaction per line.
/// let mut addrs = vec![0u64, 128, 256];
/// coalesce_lines(&mut addrs, 128);
/// assert_eq!(addrs, vec![0, 1, 2]);
/// ```
pub fn coalesce_lines(addrs: &mut Vec<u64>, line_bytes: u32) {
    debug_assert!(line_bytes.is_power_of_two());
    let shift = line_bytes.trailing_zeros();
    for a in addrs.iter_mut() {
        *a >>= shift;
    }
    addrs.sort_unstable();
    addrs.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_stays_empty() {
        let mut v: Vec<u64> = Vec::new();
        coalesce_lines(&mut v, 128);
        assert!(v.is_empty());
    }

    #[test]
    fn fully_coalesced_warp_is_one_line() {
        let mut v: Vec<u64> = (0..32).map(|l| l * 4).collect();
        coalesce_lines(&mut v, 128);
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn fully_divergent_warp_is_many_lines() {
        let mut v: Vec<u64> = (0..32).map(|l| l * 1024).collect();
        coalesce_lines(&mut v, 128);
        assert_eq!(v.len(), 32);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn straddling_two_lines() {
        let mut v = vec![100u64, 130];
        coalesce_lines(&mut v, 128);
        assert_eq!(v, vec![0, 1]);
    }
}
