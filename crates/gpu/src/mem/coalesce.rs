//! Warp-level memory-access coalescing.

/// Coalesces a warp's per-lane byte addresses into unique cache-line ids.
///
/// GPUs service one memory transaction per distinct cache line touched by
/// a warp instruction; 32 lanes reading consecutive words collapse into a
/// single 128-byte transaction, while 32 scattered lookups generate up to
/// 32. The coalescer sorts and deduplicates in place to keep the hot path
/// allocation-free (the caller owns and reuses the buffer).
///
/// # Examples
///
/// ```
/// use dynapar_gpu::mem::coalesce_lines;
///
/// // Four lanes in the same 128B line -> one transaction.
/// let mut addrs = vec![0u64, 4, 64, 124];
/// coalesce_lines(&mut addrs, 128);
/// assert_eq!(addrs, vec![0]);
///
/// // Strided lanes -> one transaction per line.
/// let mut addrs = vec![0u64, 128, 256];
/// coalesce_lines(&mut addrs, 128);
/// assert_eq!(addrs, vec![0, 1, 2]);
/// ```
pub fn coalesce_lines(addrs: &mut Vec<u64>, line_bytes: u32) {
    debug_assert!(line_bytes.is_power_of_two());
    let shift = line_bytes.trailing_zeros();
    // Lanes push their sequential-stream addresses in ascending order, so
    // after the shift the buffer is usually already sorted; detecting that
    // during the shift pass skips the sort entirely on the hot path.
    let mut sorted = true;
    let mut prev = 0u64;
    for a in addrs.iter_mut() {
        *a >>= shift;
        sorted &= *a >= prev;
        prev = *a;
    }
    if !sorted {
        addrs.sort_unstable();
    }
    addrs.dedup();
}

/// [`coalesce_lines`] for a buffer built as two blocks: `addrs[..seq_len]`
/// holds the lanes' sequential-stream addresses (almost always already
/// ascending) and `addrs[seq_len..]` the random references. Produces the
/// identical sorted unique line set, but only sorts the blocks that are
/// actually unsorted and merges them linearly — the random block is
/// typically half the buffer, and the sequential block sorts for free.
///
/// `scratch` is clobbered and used as the merge target; the result lands
/// back in `addrs` (the two vectors swap allocations).
pub fn coalesce_lines_parts(
    addrs: &mut Vec<u64>,
    seq_len: usize,
    scratch: &mut Vec<u64>,
    line_bytes: u32,
) {
    debug_assert!(seq_len <= addrs.len());
    let rand_empty = seq_len == addrs.len();
    if rand_empty || seq_len == 0 {
        coalesce_lines(addrs, line_bytes);
        return;
    }
    debug_assert!(line_bytes.is_power_of_two());
    let shift = line_bytes.trailing_zeros();
    let (seq, rand) = addrs.split_at_mut(seq_len);
    let shift_block = |block: &mut [u64]| {
        let mut sorted = true;
        let mut prev = 0u64;
        for a in block.iter_mut() {
            *a >>= shift;
            sorted &= *a >= prev;
            prev = *a;
        }
        sorted
    };
    if !shift_block(seq) {
        seq.sort_unstable();
    }
    if !shift_block(rand) {
        rand.sort_unstable();
    }
    // Merge the two sorted runs, dropping duplicates within and across.
    scratch.clear();
    let mut last = None;
    let mut push_dedup = |v: u64| {
        if last != Some(v) {
            scratch.push(v);
            last = Some(v);
        }
    };
    let (mut i, mut j) = (0, 0);
    while i < seq.len() && j < rand.len() {
        if seq[i] <= rand[j] {
            push_dedup(seq[i]);
            i += 1;
        } else {
            push_dedup(rand[j]);
            j += 1;
        }
    }
    for &v in &seq[i..] {
        push_dedup(v);
    }
    for &v in &rand[j..] {
        push_dedup(v);
    }
    std::mem::swap(addrs, scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_stays_empty() {
        let mut v: Vec<u64> = Vec::new();
        coalesce_lines(&mut v, 128);
        assert!(v.is_empty());
    }

    #[test]
    fn fully_coalesced_warp_is_one_line() {
        let mut v: Vec<u64> = (0..32).map(|l| l * 4).collect();
        coalesce_lines(&mut v, 128);
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn fully_divergent_warp_is_many_lines() {
        let mut v: Vec<u64> = (0..32).map(|l| l * 1024).collect();
        coalesce_lines(&mut v, 128);
        assert_eq!(v.len(), 32);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn straddling_two_lines() {
        let mut v = vec![100u64, 130];
        coalesce_lines(&mut v, 128);
        assert_eq!(v, vec![0, 1]);
    }

    #[test]
    fn unsorted_input_still_sorted_unique() {
        let mut v = vec![5000u64, 0, 260, 0, 5000, 130];
        coalesce_lines(&mut v, 128);
        assert_eq!(v, vec![0, 1, 2, 39]);
    }

    #[test]
    fn parts_matches_flat_coalesce() {
        // Property: the two-block variant must produce exactly what
        // coalesce_lines produces on the concatenated buffer, for every
        // split point and assorted (un)sorted contents.
        let cases: &[(&[u64], &[u64])] = &[
            (&[0, 4, 64, 124], &[]),
            (&[], &[900, 100, 100]),
            (&[0, 128, 256], &[256, 0, 70_000]),
            (&[512, 128, 0], &[1, 2, 3]),
            (&[7, 7, 7], &[7, 135, 7]),
            (&[0, 1000, 2000, 3000], &[2500, 1500, 500, 3500]),
        ];
        for (seq, rand) in cases {
            let mut flat: Vec<u64> = seq.iter().chain(rand.iter()).copied().collect();
            coalesce_lines(&mut flat, 128);
            let mut parts: Vec<u64> = seq.iter().chain(rand.iter()).copied().collect();
            let mut scratch = Vec::new();
            coalesce_lines_parts(&mut parts, seq.len(), &mut scratch, 128);
            assert_eq!(parts, flat, "seq={seq:?} rand={rand:?}");
        }
    }
}
