//! The simulated memory hierarchy: per-SMX L1 data caches, an
//! address-interleaved partitioned L2, a crossbar, and per-controller DRAM
//! channels (Table II).

mod cache;
mod coalesce;
mod dram;

pub use cache::Cache;
pub use coalesce::{coalesce_lines, coalesce_lines_parts};
pub use dram::DramChannel;

use dynapar_engine::profile::Profiler;
use dynapar_engine::snap::{ByteReader, ByteWriter, SnapError};
use dynapar_engine::Cycle;

use crate::config::MemConfig;
use crate::profile::DRAM;

/// Aggregate memory-system counters for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 probes (warp transactions).
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 probes (L1 misses).
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// DRAM reads (L2 misses).
    pub dram_accesses: u64,
    /// Write transactions issued (bandwidth only).
    pub writes: u64,
    /// L1 misses delayed because the core's MSHR set was full.
    pub mshr_stalls: u64,
}

impl MemStats {
    /// L1 hit rate in `[0, 1]`.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.l1_accesses as f64
        }
    }

    /// L2 hit rate in `[0, 1]` (Fig. 17's metric).
    pub fn l2_hit_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_hits as f64 / self.l2_accesses as f64
        }
    }
}

/// One L2 partition: a tag array plus a bank-service bandwidth limit.
#[derive(Debug, Clone)]
struct L2Partition {
    cache: Cache,
    next_free: Cycle,
}

/// Per-SMX miss-status holding registers: completion times of in-flight
/// L1 misses. A new miss entering a full set stalls until the earliest
/// outstanding one returns.
///
/// Returned completions are reclaimed lazily: the heap is only drained of
/// expired entries once it apparently reaches capacity. Stale entries
/// inflate `len` in between, but every decision that depends on occupancy
/// drains first, so admission times and stall counts are identical to
/// eager reclamation — while a set that never fills never pays a pop.
/// (A 4-ary heap and a monotone radix heap were both measured here and
/// lost to `BinaryHeap`'s bottom-sift pops in the at-capacity regime.)
#[derive(Debug, Default)]
struct MshrSet {
    inflight: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
}

impl MshrSet {
    /// Admits a miss issued at `now`; returns the cycle it may actually
    /// enter the memory system.
    fn admit(&mut self, now: Cycle, capacity: usize) -> Cycle {
        use std::cmp::Reverse;
        if self.inflight.len() >= capacity {
            while let Some(&Reverse(done)) = self.inflight.peek() {
                if done <= now.as_u64() {
                    self.inflight.pop();
                } else {
                    break;
                }
            }
        }
        if self.inflight.len() < capacity {
            now
        } else {
            let std::cmp::Reverse(earliest) = self.inflight.pop().expect("full set is non-empty");
            Cycle(earliest.max(now.as_u64()))
        }
    }

    fn complete_at(&mut self, done: Cycle) {
        self.inflight.push(std::cmp::Reverse(done.as_u64()));
    }

    /// Serializes the in-flight completion times, sorted so the bytes do
    /// not depend on heap layout (admission behaviour only depends on the
    /// multiset of times, so sorting is observation-free).
    fn encode_state(&self, w: &mut ByteWriter) {
        let mut times: Vec<u64> = self.inflight.iter().map(|r| r.0).collect();
        times.sort_unstable();
        w.put_len(times.len());
        for t in times {
            w.put_u64(t);
        }
    }

    fn decode_state(r: &mut ByteReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len()?;
        let mut set = MshrSet::default();
        for _ in 0..n {
            set.inflight.push(std::cmp::Reverse(r.get_u64()?));
        }
        Ok(set)
    }
}

/// One SMX's private slice of the memory hierarchy: its L1 data cache
/// and MSHR set.
///
/// Split out of [`MemSystem`] so the parallel backend can probe L1 tags
/// shard-locally (each shard owns its `SmxL1`) while the shared
/// L2/DRAM/stats state stays behind the in-order merge phase. The
/// sequential backend uses the exact same two-step path
/// ([`SmxL1::probe`] then [`MemSystem::service_read`]), so the split is
/// invisible to simulated timing and counters.
#[derive(Debug)]
pub struct SmxL1 {
    cache: Cache,
    mshrs: MshrSet,
}

impl SmxL1 {
    /// Builds one SMX's L1 cache and (empty) MSHR set.
    pub fn new(cfg: &MemConfig) -> Self {
        SmxL1 {
            cache: Cache::with_geometry(cfg.l1_bytes, cfg.line_bytes, cfg.l1_ways),
            mshrs: MshrSet::default(),
        }
    }

    /// Probes every line of one warp transaction against the L1 tags in
    /// input order, filling on miss; returns the hit count and appends
    /// the missing lines to `misses` (also in input order).
    ///
    /// Pure tag work: no statistics, no MSHRs, no lower levels — safe to
    /// run concurrently across SMXs. Timing and counting happen when the
    /// result is handed to [`MemSystem::service_read`].
    pub fn probe(&mut self, lines: &[u64], misses: &mut Vec<u64>) -> u64 {
        let mut hits = 0u64;
        for &line in lines {
            if self.cache.probe_fill(line) {
                hits += 1;
            } else {
                misses.push(line);
            }
        }
        hits
    }

    /// Serializes the L1 tag array and MSHR occupancy for a snapshot.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        self.cache.encode_state(w);
        self.mshrs.encode_state(w);
    }

    /// Rebuilds one SMX's L1 state from
    /// [`encode_state`](SmxL1::encode_state) bytes.
    ///
    /// # Errors
    ///
    /// Propagates malformed cache geometry or truncated input.
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<Self, SnapError> {
        Ok(SmxL1 {
            cache: Cache::decode_state(r)?,
            mshrs: MshrSet::decode_state(r)?,
        })
    }
}

/// The shared half of the memory system: the address-interleaved L2,
/// the crossbar, the DRAM channels, and the run counters. Each SMX's
/// private L1/MSHR state lives in an [`SmxL1`] owned by the caller.
///
/// `warp_read` is the hot path: given the unique cache lines touched by one
/// warp round (already coalesced), it probes the issuing SMX's L1, sends
/// misses across the crossbar to their home L2 partition, forwards L2
/// misses to the owning DRAM channel, and returns the cycle at which the
/// last transaction completes (the warp's load-use stall horizon).
///
/// # Examples
///
/// ```
/// use dynapar_engine::{profile::Profiler, Cycle};
/// use dynapar_gpu::{config::MemConfig, mem::{MemSystem, SmxL1}};
///
/// let mut prof = Profiler::new(&[]); // disabled: attribution off
/// let mut m = MemSystem::new(&MemConfig::default());
/// let mut l1 = SmxL1::new(&MemConfig::default());
/// let cold = m.warp_read(Cycle(0), &mut l1, &[0], &mut prof);
/// let warm = m.warp_read(cold, &mut l1, &[0], &mut prof);
/// assert!(warm - cold < cold - Cycle(0)); // L1 hit is much cheaper
/// ```
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    l2: Vec<L2Partition>,
    dram: Vec<DramChannel>,
    /// L2 partitions per memory controller, precomputed so the miss path
    /// does not re-derive it (with a division) on every transaction.
    parts_per_mc: usize,
    /// L1-miss lines of the warp transaction in flight, reused across
    /// calls by `warp_read`'s two-pass split.
    miss_buf: Vec<u64>,
    stats: MemStats,
}

impl MemSystem {
    /// Builds the shared hierarchy (L2 partitions and DRAM channels).
    pub fn new(cfg: &MemConfig) -> Self {
        let l2 = (0..cfg.l2_partitions)
            .map(|_| L2Partition {
                cache: Cache::with_geometry(cfg.l2_partition_bytes, cfg.line_bytes, cfg.l2_ways),
                next_free: Cycle::ZERO,
            })
            .collect();
        let lines_per_row = (cfg.dram_row_bytes / cfg.line_bytes).max(1) as u64;
        let dram = (0..cfg.memory_controllers)
            .map(|_| {
                DramChannel::new(
                    cfg.dram_banks_per_channel,
                    lines_per_row,
                    cfg.dram_row_hit_latency,
                    cfg.dram_row_miss_latency,
                    cfg.dram_service_interval,
                )
            })
            .collect();
        MemSystem {
            cfg: cfg.clone(),
            l2,
            dram,
            parts_per_mc: (cfg.l2_partitions / cfg.memory_controllers) as usize,
            miss_buf: Vec::with_capacity(64),
            stats: MemStats::default(),
        }
    }

    #[inline]
    fn partition_of(&self, line: u64) -> usize {
        // Specialize the divisors real configs use (12 on the GK110,
        // 16 in the test fixture) so LLVM strength-reduces the modulo
        // to a multiply-shift instead of an integer division.
        match self.cfg.l2_partitions {
            12 => (line % 12) as usize,
            16 => (line & 15) as usize,
            p => (line % p as u64) as usize,
        }
    }

    /// Services one warp's read transactions (unique `lines`) issued
    /// through `l1` at time `now`; returns when the slowest completes.
    ///
    /// The batch is processed in two passes: every line probes the L1
    /// first (in input order, so tag state evolves exactly as per-line
    /// dispatch), then the collected misses cross to L2/DRAM, also in
    /// input order. Hits never touch the MSHRs or lower levels and all
    /// misses issue at the same `now`, so the split is invisible to the
    /// simulated timing — it exists to keep each pass's working set (L1
    /// tags, then L2/DRAM state) hot instead of ping-ponging between
    /// them per line.
    ///
    /// `prof` attributes the DRAM share of the call when profiling is
    /// compiled in and enabled; pass a disabled profiler otherwise.
    pub fn warp_read(
        &mut self,
        now: Cycle,
        l1: &mut SmxL1,
        lines: &[u64],
        prof: &mut Profiler,
    ) -> Cycle {
        let mut misses = std::mem::take(&mut self.miss_buf);
        misses.clear();
        let hits = l1.probe(lines, &mut misses);
        let done = self.service_read(now, l1, lines.len() as u64, hits, &misses, prof);
        self.miss_buf = misses;
        done
    }

    /// Second half of a warp read whose L1 probe already happened (via
    /// [`SmxL1::probe`]): books the counters and walks every miss
    /// through MSHR admission, the crossbar, L2, and DRAM. `total` is
    /// the transaction's full line count (`hits + misses.len()`).
    ///
    /// This is the only place read statistics are updated, so a probe
    /// deferred to a later merge phase (the parallel backend) books the
    /// same counts as the inline sequential path.
    pub(crate) fn service_read(
        &mut self,
        now: Cycle,
        l1: &mut SmxL1,
        total: u64,
        hits: u64,
        misses: &[u64],
        prof: &mut Profiler,
    ) -> Cycle {
        self.stats.l1_accesses += total;
        self.stats.l1_hits += hits;
        let mut done = if hits > 0 {
            now + self.cfg.l1_hit_latency
        } else {
            now
        };
        for &line in misses {
            let completion = self.miss_line(now, &mut l1.mshrs, line, prof);
            done = done.max(completion);
        }
        done
    }

    /// One L1 miss: allocate an MSHR (stalling if the core's set is
    /// full), then cross the interconnect to the home L2 partition.
    fn miss_line(&mut self, now: Cycle, mshrs: &mut MshrSet, line: u64, prof: &mut Profiler) -> Cycle {
        self.stats.l2_accesses += 1;
        let issue = mshrs.admit(now, self.cfg.l1_mshrs as usize);
        if issue > now {
            self.stats.mshr_stalls += 1;
        }
        let pid = self.partition_of(line);
        let part = &mut self.l2[pid];
        let arrive = issue + self.cfg.l1_hit_latency + self.cfg.xbar_latency;
        let start = arrive.max(part.next_free);
        part.next_free = start + self.cfg.l2_service_interval;
        let l2_done = start + self.cfg.l2_hit_latency;
        let completion = if part.cache.probe_fill(line) {
            self.stats.l2_hits += 1;
            l2_done
        } else {
            self.stats.dram_accesses += 1;
            prof.enter(DRAM);
            let c = self.dram[pid / self.parts_per_mc].access(l2_done, line);
            prof.exit();
            c
        };
        let done = completion + self.cfg.xbar_latency;
        mshrs.complete_at(done);
        done
    }

    /// Issues one coalesced store transaction for `line`; consumes L2
    /// (and, on an L2 write miss, DRAM) bandwidth but returns no
    /// latency — stores retire asynchronously.
    pub fn warp_write(&mut self, now: Cycle, line: u64, prof: &mut Profiler) {
        self.stats.writes += 1;
        let pid = self.partition_of(line);
        let part = &mut self.l2[pid];
        let arrive = now + self.cfg.l1_hit_latency + self.cfg.xbar_latency;
        let start = arrive.max(part.next_free);
        part.next_free = start + self.cfg.l2_service_interval;
        if !part.cache.probe_fill(line) {
            prof.enter(DRAM);
            self.dram[pid / self.parts_per_mc].write(start + self.cfg.l2_hit_latency, line);
            prof.exit();
        }
    }

    /// Run counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Serializes the shared hierarchy's dynamic state: every L2
    /// partition's tags and bandwidth frontier, every DRAM channel, and
    /// the run counters. The transient miss buffer (empty between
    /// events) and the config (rebuilt by the caller) are not included.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_len(self.l2.len());
        for part in &self.l2 {
            part.cache.encode_state(w);
            w.put_u64(part.next_free.as_u64());
        }
        w.put_len(self.dram.len());
        for chan in &self.dram {
            chan.encode_state(w);
        }
        w.put_u64(self.stats.l1_accesses);
        w.put_u64(self.stats.l1_hits);
        w.put_u64(self.stats.l2_accesses);
        w.put_u64(self.stats.l2_hits);
        w.put_u64(self.stats.dram_accesses);
        w.put_u64(self.stats.writes);
        w.put_u64(self.stats.mshr_stalls);
    }

    /// Restores [`encode_state`](MemSystem::encode_state) bytes into a
    /// config-constructed hierarchy.
    ///
    /// # Errors
    ///
    /// Rejects partition/channel counts that differ from this system's
    /// configuration.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), SnapError> {
        if r.get_len()? != self.l2.len() {
            return Err(SnapError::Invalid("L2 partition count differs from config"));
        }
        for part in &mut self.l2 {
            part.cache = Cache::decode_state(r)?;
            part.next_free = Cycle(r.get_u64()?);
        }
        if r.get_len()? != self.dram.len() {
            return Err(SnapError::Invalid("DRAM channel count differs from config"));
        }
        for chan in &mut self.dram {
            chan.decode_state(r)?;
        }
        self.stats = MemStats {
            l1_accesses: r.get_u64()?,
            l1_hits: r.get_u64()?,
            l2_accesses: r.get_u64()?,
            l2_hits: r.get_u64()?,
            dram_accesses: r.get_u64()?,
            writes: r.get_u64()?,
            mshr_stalls: r.get_u64()?,
        };
        Ok(())
    }

    /// Mean DRAM row-buffer hit rate across channels (diagnostic).
    pub fn dram_row_hit_rate(&self) -> f64 {
        let active: Vec<f64> = self
            .dram
            .iter()
            .filter(|c| c.accesses() > 0)
            .map(|c| c.row_hit_rate())
            .collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A disabled profiler for exercising the memory system directly.
    fn np() -> Profiler {
        Profiler::new(&[])
    }

    fn small_cfg() -> MemConfig {
        MemConfig {
            l1_bytes: 2 * 128 * 4, // 8 lines, 4-way, 2 sets
            l2_partition_bytes: 16 * 128 * 8,
            ..MemConfig::default()
        }
    }

    #[test]
    fn l1_hit_is_fast_and_counted() {
        let mut m = MemSystem::new(&small_cfg());
        let mut l1 = SmxL1::new(&small_cfg());
        m.warp_read(Cycle(0), &mut l1, &[7], &mut np());
        let t0 = Cycle(10_000);
        let done = m.warp_read(t0, &mut l1, &[7], &mut np());
        assert_eq!(done, t0 + m.cfg.l1_hit_latency);
        assert_eq!(m.stats().l1_hits, 1);
        assert_eq!(m.stats().l1_accesses, 2);
    }

    #[test]
    fn l2_hit_when_another_smx_fetched_the_line() {
        let mut m = MemSystem::new(&small_cfg());
        let mut l1a = SmxL1::new(&small_cfg());
        let mut l1b = SmxL1::new(&small_cfg());
        m.warp_read(Cycle(0), &mut l1a, &[7], &mut np()); // SMX0 pulls through L2
        let before = m.stats();
        assert_eq!(before.l2_hits, 0);
        m.warp_read(Cycle(10_000), &mut l1b, &[7], &mut np()); // SMX1 misses L1, hits L2
        let after = m.stats();
        assert_eq!(after.l2_hits, 1);
        assert_eq!(after.dram_accesses, before.dram_accesses);
    }

    #[test]
    fn miss_chain_latency_ordering() {
        let mut m = MemSystem::new(&small_cfg());
        let mut l1 = SmxL1::new(&small_cfg());
        let dram_done = m.warp_read(Cycle(0), &mut l1, &[3], &mut np());
        // L2-resident latency (second SMX refetching a line the first
        // pulled through L2) must be below DRAM latency.
        let mut m3 = MemSystem::new(&small_cfg());
        let mut l1a = SmxL1::new(&small_cfg());
        let mut l1b = SmxL1::new(&small_cfg());
        m3.warp_read(Cycle(0), &mut l1a, &[3], &mut np());
        let l2_done = m3.warp_read(Cycle(100_000), &mut l1b, &[3], &mut np()) - Cycle(100_000);
        assert!(l2_done < dram_done - Cycle(0), "L2 {l2_done:?} vs DRAM {dram_done:?}");
    }

    #[test]
    fn many_lines_return_max_completion() {
        let mut m = MemSystem::new(&small_cfg());
        let mut l1 = SmxL1::new(&small_cfg());
        let one = m.warp_read(Cycle(0), &mut l1, &[100], &mut np());
        let mut m2 = MemSystem::new(&small_cfg());
        let mut l1b = SmxL1::new(&small_cfg());
        let many = m2.warp_read(
            Cycle(0),
            &mut l1b,
            &[100, 101, 102, 103, 104, 105, 106, 107],
            &mut np(),
        );
        assert!(many >= one, "more transactions can only finish later");
    }

    #[test]
    fn bank_contention_serializes_same_partition() {
        let cfg = small_cfg();
        let parts = cfg.l2_partitions as u64;
        let mut m = MemSystem::new(&cfg);
        let mut l1 = SmxL1::new(&cfg);
        // Two lines in the same partition vs two in different partitions.
        let same = m.warp_read(Cycle(0), &mut l1, &[0, parts], &mut np());
        let mut m2 = MemSystem::new(&cfg);
        let mut l1b = SmxL1::new(&cfg);
        let diff = m2.warp_read(Cycle(0), &mut l1b, &[0, 1], &mut np());
        assert!(same >= diff);
    }

    #[test]
    fn writes_count_but_do_not_block() {
        let mut m = MemSystem::new(&small_cfg());
        m.warp_write(Cycle(0), 55, &mut np());
        assert_eq!(m.stats().writes, 1);
    }

    #[test]
    fn deferred_probe_matches_inline_warp_read() {
        // The parallel backend probes L1 shard-side and services the
        // result later; the two-step path must book the same latency
        // and counters as the one-call path.
        let lines = [7u64, 8, 9, 7 + 256];
        let mut m1 = MemSystem::new(&small_cfg());
        let mut a1 = SmxL1::new(&small_cfg());
        let inline_done = m1.warp_read(Cycle(5), &mut a1, &lines, &mut np());

        let mut m2 = MemSystem::new(&small_cfg());
        let mut a2 = SmxL1::new(&small_cfg());
        let mut misses = Vec::new();
        let hits = a2.probe(&lines, &mut misses);
        let split_done =
            m2.service_read(Cycle(5), &mut a2, lines.len() as u64, hits, &misses, &mut np());
        assert_eq!(inline_done, split_done);
        assert_eq!(m1.stats(), m2.stats());
    }

    #[test]
    fn state_round_trips_through_snapshot_bytes() {
        let cfg = small_cfg();
        let mut m = MemSystem::new(&cfg);
        let mut l1 = SmxL1::new(&cfg);
        // Touch L1, L2, DRAM and the write path so every counter moves.
        m.warp_read(Cycle(0), &mut l1, &[1, 2, 3, 300], &mut np());
        m.warp_read(Cycle(50), &mut l1, &[1, 2], &mut np());
        m.warp_write(Cycle(60), 77, &mut np());

        let mut w = ByteWriter::new();
        m.encode_state(&mut w);
        l1.encode_state(&mut w);
        let bytes = w.into_bytes();

        let mut m2 = MemSystem::new(&cfg);
        let mut r = ByteReader::new(&bytes);
        m2.decode_state(&mut r).unwrap();
        let mut l1b = SmxL1::decode_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(m2.stats(), m.stats());
        assert_eq!(m2.dram_row_hit_rate(), m.dram_row_hit_rate());
        // Continuing both from the same point must agree cycle-for-cycle.
        for (t, lines) in [(100u64, [1u64, 4]), (200, [300, 301]), (300, [1, 300])] {
            let a = m.warp_read(Cycle(t), &mut l1, &lines, &mut np());
            let b = m2.warp_read(Cycle(t), &mut l1b, &lines, &mut np());
            assert_eq!(a, b, "t={t}");
        }
        assert_eq!(m2.stats(), m.stats());
    }

    #[test]
    fn decode_rejects_wrong_partition_count() {
        let mut w = ByteWriter::new();
        MemSystem::new(&small_cfg()).encode_state(&mut w);
        let bytes = w.into_bytes();
        let other_cfg = MemConfig {
            l2_partitions: small_cfg().l2_partitions * 2,
            ..small_cfg()
        };
        let mut other = MemSystem::new(&other_cfg);
        let mut r = ByteReader::new(&bytes);
        assert!(other.decode_state(&mut r).is_err());
    }

    #[test]
    fn stats_rates() {
        let s = MemStats {
            l1_accesses: 10,
            l1_hits: 5,
            l2_accesses: 5,
            l2_hits: 4,
            dram_accesses: 1,
            writes: 0,
            mshr_stalls: 0,
        };
        assert!((s.l1_hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.l2_hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(MemStats::default().l1_hit_rate(), 0.0);
    }
}

#[cfg(test)]
mod mshr_tests {
    use super::*;

    /// A disabled profiler for exercising the memory system directly.
    fn np() -> Profiler {
        Profiler::new(&[])
    }

    #[test]
    fn mshr_set_admits_until_full_then_stalls() {
        let mut m = MshrSet::default();
        // Fill 4 slots with misses completing at 100, 200, 300, 400.
        for done in [100u64, 200, 300, 400] {
            assert_eq!(m.admit(Cycle(0), 4), Cycle(0));
            m.complete_at(Cycle(done));
        }
        // Fifth miss at t=10 must wait for the earliest return (100).
        assert_eq!(m.admit(Cycle(10), 4), Cycle(100));
        m.complete_at(Cycle(500));
        // After time passes, returned entries free slots.
        assert_eq!(m.admit(Cycle(250), 4), Cycle(0).max(Cycle(250)));
    }

    #[test]
    fn few_mshrs_throttle_miss_storms() {
        let tight = MemConfig {
            l1_mshrs: 2,
            ..MemConfig::default()
        };
        let loose = MemConfig {
            l1_mshrs: 64,
            ..MemConfig::default()
        };
        // A storm of distinct lines (all misses) from one SMX.
        let lines: Vec<u64> = (0..64).collect();
        let mut m_tight = MemSystem::new(&tight);
        let mut l1_tight = SmxL1::new(&tight);
        let mut m_loose = MemSystem::new(&loose);
        let mut l1_loose = SmxL1::new(&loose);
        let t_tight = m_tight.warp_read(Cycle(0), &mut l1_tight, &lines, &mut np());
        let t_loose = m_loose.warp_read(Cycle(0), &mut l1_loose, &lines, &mut np());
        assert!(
            t_tight > t_loose,
            "2 MSHRs ({t_tight:?}) must be slower than 64 ({t_loose:?})"
        );
        assert!(m_tight.stats().mshr_stalls > 0);
        assert_eq!(m_loose.stats().mshr_stalls, 0);
    }

    #[test]
    fn hits_never_consume_mshrs() {
        let cfg = MemConfig {
            l1_mshrs: 1,
            ..MemConfig::default()
        };
        let mut m = MemSystem::new(&cfg);
        let mut l1 = SmxL1::new(&cfg);
        m.warp_read(Cycle(0), &mut l1, &[7], &mut np()); // miss fills L1
        let before = m.stats().mshr_stalls;
        for i in 0..10 {
            m.warp_read(Cycle(100_000 + i), &mut l1, &[7], &mut np()); // all hits
        }
        assert_eq!(m.stats().mshr_stalls, before);
    }
}
