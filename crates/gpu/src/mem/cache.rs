//! A set-associative, LRU tag array.

use dynapar_engine::snap::{ByteReader, ByteWriter, SnapError};

/// Tag value of a never-filled way. Line ids are byte addresses shifted
/// right by the line size, so no real line can reach `u64::MAX`.
const INVALID_TAG: u64 = u64::MAX;

/// One way of one set: the cached line id and its LRU timestamp. Packing
/// tag and stamp side by side keeps a whole 4-way set inside a single
/// host cache line, which matters because [`Cache::probe_fill`] is the
/// hottest function in the simulator.
#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    stamp: u64,
}

/// A set-associative cache modeled as a tag store (no data payloads — the
/// simulator only needs hit/miss behaviour and replacement state).
///
/// Indexed by *line id* (byte address >> log2(line size)); the caller picks
/// the granularity. Replacement is true LRU via per-way timestamps: invalid
/// ways keep stamp 0 while the tick counter starts at 1, so "lowest stamp,
/// first on ties" is exactly "first invalid way, else least recently used".
///
/// # Examples
///
/// ```
/// use dynapar_gpu::mem::Cache;
///
/// let mut c = Cache::new(2, 2); // 2 sets, 2 ways
/// assert!(!c.probe_fill(0)); // cold miss
/// assert!(c.probe_fill(0));  // now a hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    lines: Vec<Way>,
    tick: u64,
    accesses: u64,
    hits: u64,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have sets and ways");
        Cache {
            sets,
            ways,
            lines: vec![
                Way {
                    tag: INVALID_TAG,
                    stamp: 0,
                };
                sets * ways
            ],
            tick: 0,
            accesses: 0,
            hits: 0,
        }
    }

    /// Builds a cache from byte sizes: `total_bytes / (line_bytes × ways)`
    /// sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn with_geometry(total_bytes: u32, line_bytes: u32, ways: u32) -> Self {
        assert!(
            total_bytes.is_multiple_of(line_bytes * ways),
            "size must be divisible by line_bytes * ways"
        );
        Cache::new((total_bytes / (line_bytes * ways)) as usize, ways as usize)
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        // Every real geometry has power-of-two sets; the branch predicts
        // perfectly and saves an integer division on the hot path.
        if self.sets.is_power_of_two() {
            (line & (self.sets as u64 - 1)) as usize
        } else {
            (line % self.sets as u64) as usize
        }
    }

    /// Probes for `line`; on a miss, fills it (evicting LRU). Returns
    /// whether the probe hit.
    ///
    /// Dispatches to a const-width probe for the associativities every
    /// real geometry uses (Table II: 4-way L1, 8-way L2) so the way scan
    /// fully unrolls with no bounds checks.
    pub fn probe_fill(&mut self, line: u64) -> bool {
        match self.ways {
            4 => self.probe_fill_n::<4>(line),
            8 => self.probe_fill_n::<8>(line),
            _ => self.probe_fill_dyn(line),
        }
    }

    #[inline]
    fn probe_fill_n<const W: usize>(&mut self, line: u64) -> bool {
        debug_assert_ne!(line, INVALID_TAG, "line id collides with the invalid sentinel");
        self.tick += 1;
        self.accesses += 1;
        let base = self.set_of(line) * W;
        let set: &mut [Way; W] = (&mut self.lines[base..base + W]).try_into().expect("set width");
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        for (w, way) in set.iter_mut().enumerate() {
            if way.tag == line {
                way.stamp = self.tick;
                self.hits += 1;
                return true;
            }
            if way.stamp < victim_stamp {
                victim_stamp = way.stamp;
                victim = w;
            }
        }
        set[victim] = Way {
            tag: line,
            stamp: self.tick,
        };
        false
    }

    fn probe_fill_dyn(&mut self, line: u64) -> bool {
        debug_assert_ne!(line, INVALID_TAG, "line id collides with the invalid sentinel");
        self.tick += 1;
        self.accesses += 1;
        let base = self.set_of(line) * self.ways;
        let set = &mut self.lines[base..base + self.ways];
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        for (w, way) in set.iter_mut().enumerate() {
            if way.tag == line {
                way.stamp = self.tick;
                self.hits += 1;
                return true;
            }
            if way.stamp < victim_stamp {
                victim_stamp = way.stamp;
                victim = w;
            }
        }
        set[victim] = Way {
            tag: line,
            stamp: self.tick,
        };
        false
    }

    /// Probes without filling (used for diagnostics/tests).
    pub fn contains(&self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        self.lines[base..base + self.ways].iter().any(|w| w.tag == line)
    }

    /// Total probes so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate in `[0, 1]`; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Number of lines the cache can hold.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Serializes the full tag-array state (geometry, LRU stamps,
    /// counters) for a snapshot.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_len(self.sets);
        w.put_len(self.ways);
        w.put_u64(self.tick);
        w.put_u64(self.accesses);
        w.put_u64(self.hits);
        for way in &self.lines {
            w.put_u64(way.tag);
            w.put_u64(way.stamp);
        }
    }

    /// Rebuilds a cache from [`encode_state`](Cache::encode_state) bytes.
    ///
    /// # Errors
    ///
    /// Rejects a zero-sized geometry and truncated input.
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<Self, SnapError> {
        let sets = r.get_len()?;
        let ways = r.get_len()?;
        if sets == 0 || ways == 0 {
            return Err(SnapError::Invalid("cache must have sets and ways"));
        }
        let tick = r.get_u64()?;
        let accesses = r.get_u64()?;
        let hits = r.get_u64()?;
        let mut lines = Vec::with_capacity(sets * ways);
        for _ in 0..sets * ways {
            lines.push(Way {
                tag: r.get_u64()?,
                stamp: r.get_u64()?,
            });
        }
        Ok(Cache {
            sets,
            ways,
            lines,
            tick,
            accesses,
            hits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert!(!c.probe_fill(10));
        assert!(c.probe_fill(10));
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.hits(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(1, 2); // one set, two ways
        c.probe_fill(1);
        c.probe_fill(2);
        c.probe_fill(1); // touch 1 -> 2 becomes LRU
        c.probe_fill(3); // evicts 2
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(!c.contains(2));
    }

    #[test]
    fn invalid_ways_fill_before_any_eviction() {
        let mut c = Cache::new(1, 4);
        c.probe_fill(1);
        c.probe_fill(2);
        c.probe_fill(3); // three cold misses must use the three empty ways
        assert!(c.contains(1) && c.contains(2) && c.contains(3));
        c.probe_fill(4); // last empty way, still no eviction
        assert!(c.contains(1) && c.contains(4));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = Cache::new(2, 1);
        c.probe_fill(0); // set 0
        c.probe_fill(1); // set 1
        assert!(c.contains(0));
        assert!(c.contains(1));
    }

    #[test]
    fn non_power_of_two_sets_still_index_correctly() {
        let mut c = Cache::new(3, 1);
        c.probe_fill(0); // set 0
        c.probe_fill(1); // set 1
        c.probe_fill(2); // set 2
        assert!(c.contains(0) && c.contains(1) && c.contains(2));
        c.probe_fill(3); // set 0 again: evicts line 0
        assert!(c.contains(3));
        assert!(!c.contains(0));
    }

    #[test]
    fn geometry_constructor_matches_table_ii_l1() {
        // 16KB, 128B lines, 4-way -> 32 sets -> 128 lines.
        let c = Cache::with_geometry(16 * 1024, 128, 4);
        assert_eq!(c.capacity_lines(), 128);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(4, 2); // 8 lines
        // Stream 16 distinct lines twice: second pass must still miss
        // (LRU with a circular working set 2x capacity keeps zero reuse).
        for pass in 0..2 {
            for l in 0..16u64 {
                let hit = c.probe_fill(l);
                if pass == 0 {
                    assert!(!hit);
                }
            }
        }
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = Cache::new(4, 2);
        for l in 0..8u64 {
            c.probe_fill(l);
        }
        for l in 0..8u64 {
            assert!(c.probe_fill(l), "line {l} should hit");
        }
    }

    #[test]
    #[should_panic(expected = "cache must have sets and ways")]
    fn zero_geometry_rejected() {
        Cache::new(0, 1);
    }

    #[test]
    fn state_round_trips_through_snapshot_bytes() {
        let mut c = Cache::new(4, 2);
        for l in [1u64, 9, 1, 5, 13, 2] {
            c.probe_fill(l);
        }
        let mut w = ByteWriter::new();
        c.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut back = Cache::decode_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.accesses(), c.accesses());
        assert_eq!(back.hits(), c.hits());
        assert_eq!(back.capacity_lines(), c.capacity_lines());
        // Continuing both must keep identical hit/miss (and LRU) behaviour.
        for l in [1u64, 9, 17, 5, 13, 21, 1] {
            assert_eq!(back.probe_fill(l), c.probe_fill(l), "line {l}");
        }
        assert_eq!(back.hits(), c.hits());
    }
}
