//! A set-associative, LRU tag array.

/// A set-associative cache modeled as a tag store (no data payloads — the
/// simulator only needs hit/miss behaviour and replacement state).
///
/// Indexed by *line id* (byte address >> log2(line size)); the caller picks
/// the granularity. Replacement is true LRU via per-way timestamps.
///
/// # Examples
///
/// ```
/// use dynapar_gpu::mem::Cache;
///
/// let mut c = Cache::new(2, 2); // 2 sets, 2 ways
/// assert!(!c.probe_fill(0)); // cold miss
/// assert!(c.probe_fill(0));  // now a hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    tags: Vec<u64>,
    valid: Vec<bool>,
    stamps: Vec<u64>,
    tick: u64,
    accesses: u64,
    hits: u64,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have sets and ways");
        Cache {
            sets,
            ways,
            tags: vec![0; sets * ways],
            valid: vec![false; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            accesses: 0,
            hits: 0,
        }
    }

    /// Builds a cache from byte sizes: `total_bytes / (line_bytes × ways)`
    /// sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn with_geometry(total_bytes: u32, line_bytes: u32, ways: u32) -> Self {
        assert!(
            total_bytes.is_multiple_of(line_bytes * ways),
            "size must be divisible by line_bytes * ways"
        );
        Cache::new((total_bytes / (line_bytes * ways)) as usize, ways as usize)
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line % self.sets as u64) as usize
    }

    /// Probes for `line`; on a miss, fills it (evicting LRU). Returns
    /// whether the probe hit.
    pub fn probe_fill(&mut self, line: u64) -> bool {
        self.tick += 1;
        self.accesses += 1;
        let set = self.set_of(line);
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        // Hit path.
        for (w, tag) in ways.iter().enumerate() {
            if self.valid[base + w] && *tag == line {
                self.stamps[base + w] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        // Miss: fill an invalid way, else evict LRU.
        let victim = (0..self.ways)
            .find(|w| !self.valid[base + w])
            .unwrap_or_else(|| {
                (0..self.ways)
                    .min_by_key(|w| self.stamps[base + w])
                    .expect("ways > 0")
            });
        self.tags[base + victim] = line;
        self.valid[base + victim] = true;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Probes without filling (used for diagnostics/tests).
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.ways;
        (0..self.ways).any(|w| self.valid[base + w] && self.tags[base + w] == line)
    }

    /// Total probes so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate in `[0, 1]`; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Number of lines the cache can hold.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert!(!c.probe_fill(10));
        assert!(c.probe_fill(10));
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.hits(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(1, 2); // one set, two ways
        c.probe_fill(1);
        c.probe_fill(2);
        c.probe_fill(1); // touch 1 -> 2 becomes LRU
        c.probe_fill(3); // evicts 2
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(!c.contains(2));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = Cache::new(2, 1);
        c.probe_fill(0); // set 0
        c.probe_fill(1); // set 1
        assert!(c.contains(0));
        assert!(c.contains(1));
    }

    #[test]
    fn geometry_constructor_matches_table_ii_l1() {
        // 16KB, 128B lines, 4-way -> 32 sets -> 128 lines.
        let c = Cache::with_geometry(16 * 1024, 128, 4);
        assert_eq!(c.capacity_lines(), 128);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(4, 2); // 8 lines
        // Stream 16 distinct lines twice: second pass must still miss
        // (LRU with a circular working set 2x capacity keeps zero reuse).
        for pass in 0..2 {
            for l in 0..16u64 {
                let hit = c.probe_fill(l);
                if pass == 0 {
                    assert!(!hit);
                }
            }
        }
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = Cache::new(4, 2);
        for l in 0..8u64 {
            c.probe_fill(l);
        }
        for l in 0..8u64 {
            assert!(c.probe_fill(l), "line {l} should hit");
        }
    }

    #[test]
    #[should_panic(expected = "cache must have sets and ways")]
    fn zero_geometry_rejected() {
        Cache::new(0, 1);
    }
}
