//! Open-row DRAM channel model.

use dynapar_engine::snap::{ByteReader, ByteWriter, SnapError};
use dynapar_engine::Cycle;

use crate::snap::{get_opt_u64, put_opt_u64};

/// One DRAM channel (memory controller) with per-bank open-row tracking
/// and a service-interval bandwidth limit — a lightweight stand-in for the
/// FR-FCFS controllers of Table II.
///
/// A request to a bank whose row buffer already holds the target row pays
/// the row-hit latency; otherwise the precharge+activate row-miss latency.
/// Back-to-back requests to one channel are separated by at least the
/// service interval, which bounds per-channel bandwidth.
#[derive(Debug, Clone)]
pub struct DramChannel {
    banks: Vec<Option<u64>>, // open row per bank
    next_free: Cycle,
    row_hit_latency: u64,
    row_miss_latency: u64,
    service_interval: u64,
    lines_per_row: u64,
    accesses: u64,
    row_hits: u64,
}

impl DramChannel {
    /// Creates a channel with `banks` banks; `lines_per_row` cache lines
    /// share one DRAM row (row size / line size).
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `lines_per_row` is zero.
    pub fn new(
        banks: u32,
        lines_per_row: u64,
        row_hit_latency: u64,
        row_miss_latency: u64,
        service_interval: u64,
    ) -> Self {
        assert!(banks > 0, "need at least one bank");
        assert!(lines_per_row > 0, "need at least one line per row");
        DramChannel {
            banks: vec![None; banks as usize],
            next_free: Cycle::ZERO,
            row_hit_latency,
            row_miss_latency,
            service_interval,
            lines_per_row,
            accesses: 0,
            row_hits: 0,
        }
    }

    /// Maps a line to its DRAM row, avoiding the division when the row
    /// holds a power-of-two number of lines (every real geometry does).
    #[inline]
    fn row_of(&self, line: u64) -> u64 {
        if self.lines_per_row.is_power_of_two() {
            line >> self.lines_per_row.trailing_zeros()
        } else {
            line / self.lines_per_row
        }
    }

    #[inline]
    fn bank_of(&self, row: u64) -> usize {
        let banks = self.banks.len() as u64;
        if banks.is_power_of_two() {
            (row & (banks - 1)) as usize
        } else {
            (row % banks) as usize
        }
    }

    /// Services a read of cache line `line` arriving at `arrive`; returns
    /// the completion time.
    pub fn access(&mut self, arrive: Cycle, line: u64) -> Cycle {
        let start = arrive.max(self.next_free);
        self.next_free = start + self.service_interval;
        self.accesses += 1;

        let row = self.row_of(line);
        let bank = self.bank_of(row);
        let latency = if self.banks[bank] == Some(row) {
            self.row_hits += 1;
            self.row_hit_latency
        } else {
            self.banks[bank] = Some(row);
            self.row_miss_latency
        };
        start + latency
    }

    /// Consumes bandwidth for a write without producing a completion time
    /// (stores do not stall warps).
    pub fn write(&mut self, arrive: Cycle, line: u64) {
        let start = arrive.max(self.next_free);
        self.next_free = start + self.service_interval;
        let row = self.row_of(line);
        let bank = self.bank_of(row);
        if self.banks[bank] != Some(row) {
            self.banks[bank] = Some(row);
        }
    }

    /// Total read requests serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Fraction of reads that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Serializes the dynamic channel state (open rows, bandwidth
    /// frontier, counters); the timing parameters are rebuilt from the
    /// config at decode time.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_len(self.banks.len());
        for bank in &self.banks {
            put_opt_u64(w, *bank);
        }
        w.put_u64(self.next_free.as_u64());
        w.put_u64(self.accesses);
        w.put_u64(self.row_hits);
    }

    /// Restores [`encode_state`](DramChannel::encode_state) bytes into a
    /// config-constructed channel.
    ///
    /// # Errors
    ///
    /// Rejects a bank count that differs from this channel's geometry.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), SnapError> {
        let n = r.get_len()?;
        if n != self.banks.len() {
            return Err(SnapError::Invalid("DRAM bank count differs from config"));
        }
        for bank in &mut self.banks {
            *bank = get_opt_u64(r)?;
        }
        self.next_free = Cycle(r.get_u64()?);
        self.accesses = r.get_u64()?;
        self.row_hits = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> DramChannel {
        DramChannel::new(4, 16, 100, 250, 4)
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut c = ch();
        let done = c.access(Cycle(0), 0);
        assert_eq!(done, Cycle(250));
        assert_eq!(c.accesses(), 1);
        assert_eq!(c.row_hit_rate(), 0.0);
    }

    #[test]
    fn same_row_hits_after_open() {
        let mut c = ch();
        c.access(Cycle(0), 0);
        let done = c.access(Cycle(1000), 1); // same row (lines 0..16)
        assert_eq!(done, Cycle(1000 + 100));
        assert!((c.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_row_same_bank_misses() {
        let mut c = ch();
        c.access(Cycle(0), 0); // row 0, bank 0
        // Row 4 also maps to bank 0 (4 % 4 == 0) and closes row 0.
        let done = c.access(Cycle(1000), 4 * 16);
        assert_eq!(done, Cycle(1250));
        let done = c.access(Cycle(2000), 0); // row 0 again: miss
        assert_eq!(done, Cycle(2250));
    }

    #[test]
    fn bandwidth_serializes_back_to_back() {
        let mut c = ch();
        let d1 = c.access(Cycle(0), 0);
        let d2 = c.access(Cycle(0), 16); // different bank, same instant
        // Second must start 4 cycles later regardless of bank.
        assert!(d2 >= d1.saturating_sub(Cycle(250)) + Cycle(4 + 250));
        assert_eq!(d2, Cycle(4 + 250));
    }

    #[test]
    fn writes_consume_bandwidth() {
        let mut c = ch();
        c.write(Cycle(0), 0);
        let done = c.access(Cycle(0), 16);
        // The read had to wait for the write's service slot.
        assert_eq!(done, Cycle(4 + 250));
    }

    #[test]
    fn state_round_trips_through_snapshot_bytes() {
        let mut c = ch();
        c.access(Cycle(0), 0);
        c.access(Cycle(10), 1);
        c.write(Cycle(20), 64);
        let mut w = ByteWriter::new();
        c.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut back = ch();
        let mut r = ByteReader::new(&bytes);
        back.decode_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.accesses(), c.accesses());
        assert_eq!(back.row_hit_rate(), c.row_hit_rate());
        // Next accesses agree exactly (open rows + bandwidth frontier).
        for (t, l) in [(30u64, 2u64), (31, 4 * 16), (32, 0)] {
            assert_eq!(back.access(Cycle(t), l), c.access(Cycle(t), l));
        }
    }

    #[test]
    fn decode_rejects_wrong_bank_count() {
        let mut w = ByteWriter::new();
        ch().encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = DramChannel::new(8, 16, 100, 250, 4);
        let mut r = ByteReader::new(&bytes);
        assert!(other.decode_state(&mut r).is_err());
    }
}
