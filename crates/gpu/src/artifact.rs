//! Run outcomes and the JSON run artifact.
//!
//! [`Simulation::run`](crate::Simulation::run) returns a [`RunOutcome`]
//! bundling the [`SimReport`], the optional [`Trace`], the controller
//! (for policy-state inspection), and — when metrics are enabled — a
//! [`RunArtifact`]: a self-describing JSON record of the whole run
//! (config echo, report, component metrics, CCQS estimate-vs-actual
//! samples, and the decision trace). Artifacts deliberately exclude
//! wall-clock fields so a fixed-seed run emits byte-identical JSON
//! regardless of host speed or worker count.

use std::fmt;

use dynapar_engine::json::{Json, ParseError};
use dynapar_engine::metrics::{MetricsLevel, MetricsRegistry};
use dynapar_engine::profile::ProfileReport;

use crate::config::GpuConfig;
use crate::controller::LaunchController;
use crate::sim::WinStats;
use crate::stats::SimReport;
use crate::trace::Trace;

/// The schema tag stamped into every artifact (`"schema"` key).
pub const ARTIFACT_SCHEMA: &str = "dynapar.run_artifact/v1";

/// Everything a finished simulation hands back.
pub struct RunOutcome {
    /// Aggregate statistics of the run.
    pub report: SimReport,
    /// The event trace, if tracing was enabled on the builder.
    pub trace: Option<Trace>,
    /// The launch controller, returned so callers can downcast (via
    /// [`LaunchController::as_any`]) and read policy-side state.
    pub controller: Box<dyn LaunchController>,
    /// The JSON run artifact, unless metrics were
    /// [`Off`](MetricsLevel::Off).
    pub artifact: Option<RunArtifact>,
    /// Host-side phase profile, when profiling was requested via
    /// [`SimulationBuilder::profile`](crate::SimulationBuilder::profile)
    /// *and* the `profile` cargo feature is compiled in. Deliberately
    /// not part of [`RunArtifact`]: artifacts stay byte-identical
    /// whether or not the run was profiled.
    pub profile: Option<ProfileReport>,
    /// The captured snapshot container
    /// ([`SNAPSHOT_SCHEMA`](crate::SNAPSHOT_SCHEMA)), when the builder
    /// armed one via
    /// [`SimulationBuilder::snapshot_at`](crate::SimulationBuilder::snapshot_at)
    /// and the run reached that cycle. Feed the bytes back through
    /// [`SimulationBuilder::build_resumed`](crate::SimulationBuilder::build_resumed)
    /// or write them to disk as-is.
    pub snapshot: Option<Vec<u8>>,
    /// Lookahead-window statistics from the parallel backend (empty for
    /// sequential runs). Like `profile`, deliberately not part of
    /// [`RunArtifact`]: artifact bytes stay backend- and
    /// window-invariant, so `cmp` across backends keeps working.
    pub win: WinStats,
}

impl fmt::Debug for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunOutcome")
            .field("report", &self.report)
            .field("trace", &self.trace.is_some())
            .field("controller", &self.controller.name())
            .field("artifact", &self.artifact.is_some())
            .field("profile", &self.profile.is_some())
            .field("snapshot", &self.snapshot.as_ref().map(Vec::len))
            .field("win", &self.win)
            .finish()
    }
}

/// One CCQS estimate-vs-actual pair: the policy's Eq. 1 completion-time
/// prediction for a child kernel against the kernel's simulated
/// completion latency (creation to own-work-done).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcqsSample {
    /// The child kernel's id.
    pub kernel: u32,
    /// Predicted completion time (cycles from the decision).
    pub estimate: u64,
    /// Observed creation-to-completion latency, if the kernel finished.
    pub actual: Option<u64>,
}

impl CcqsSample {
    fn to_json(self) -> Json {
        Json::obj([
            ("kernel", Json::U64(self.kernel as u64)),
            ("estimate", Json::U64(self.estimate)),
            (
                "actual",
                self.actual.map_or(Json::Null, Json::U64),
            ),
        ])
    }
}

/// A parse or schema-validation failure in [`RunArtifact::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The text is not well-formed JSON.
    Json(ParseError),
    /// The JSON is well-formed but not a valid run artifact.
    Schema(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Json(e) => write!(f, "invalid JSON: {e}"),
            ArtifactError::Schema(msg) => write!(f, "invalid artifact: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<ParseError> for ArtifactError {
    fn from(e: ParseError) -> Self {
        ArtifactError::Json(e)
    }
}

/// A validated JSON run artifact.
///
/// Construction happens inside [`Simulation::run`](crate::Simulation::run)
/// (when the builder enabled metrics) or by [`parse`](RunArtifact::parse)
/// from previously emitted text; either way the tree is guaranteed to
/// carry the `schema` tag and the required sections.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifact {
    json: Json,
}

impl RunArtifact {
    pub(crate) fn build(
        level: MetricsLevel,
        cfg: &GpuConfig,
        report: &SimReport,
        registry: &MetricsRegistry,
        samples: &[CcqsSample],
        timeseries: Option<Json>,
        trace: Option<&Trace>,
    ) -> Self {
        let mut members: Vec<(&str, Json)> = vec![
            ("schema", Json::str(ARTIFACT_SCHEMA)),
            ("metrics_level", Json::str(level.as_str())),
            ("config", cfg.to_json()),
            ("report", report.to_json(level)),
            ("metrics", registry.to_json()),
            (
                "ccqs_samples",
                Json::Arr(samples.iter().map(|s| s.to_json()).collect()),
            ),
        ];
        // Only the timeseries level carries the section at all; lower
        // levels keep their key sets (and thus their bytes) unchanged.
        if let Some(ts) = timeseries {
            members.push(("timeseries", ts));
        }
        members.push(("trace", trace.map_or(Json::Null, Trace::to_json)));
        RunArtifact {
            json: Json::obj(members),
        }
    }

    /// The underlying JSON tree.
    pub fn json(&self) -> &Json {
        &self.json
    }

    /// The artifact's recording level.
    pub fn level(&self) -> MetricsLevel {
        self.json
            .get("metrics_level")
            .and_then(Json::as_str)
            .and_then(MetricsLevel::parse)
            .unwrap_or(MetricsLevel::Summary)
    }

    /// The windowed-telemetry section (`dynapar-timeseries/1`), present
    /// only when the run recorded at
    /// [`Timeseries`](MetricsLevel::Timeseries).
    pub fn timeseries(&self) -> Option<&Json> {
        self.json.get("timeseries")
    }

    /// The CCQS estimate-vs-actual samples, decoded from the tree.
    pub fn ccqs_samples(&self) -> Vec<CcqsSample> {
        let Some(arr) = self.json.get("ccqs_samples").and_then(Json::as_array) else {
            return Vec::new();
        };
        arr.iter()
            .filter_map(|s| {
                Some(CcqsSample {
                    kernel: s.get("kernel")?.as_u64()? as u32,
                    estimate: s.get("estimate")?.as_u64()?,
                    actual: s.get("actual").and_then(Json::as_u64),
                })
            })
            .collect()
    }

    /// Parses and validates previously emitted artifact text.
    ///
    /// Validation checks the `schema` tag and the presence and shape of
    /// every required section, so downstream tooling can trust a parsed
    /// artifact without re-probing each key.
    pub fn parse(text: &str) -> Result<RunArtifact, ArtifactError> {
        let json = Json::parse(text)?;
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| ArtifactError::Schema("missing `schema` tag".into()))?;
        if schema != ARTIFACT_SCHEMA {
            return Err(ArtifactError::Schema(format!(
                "unsupported schema `{schema}` (expected `{ARTIFACT_SCHEMA}`)"
            )));
        }
        let level = json
            .get("metrics_level")
            .and_then(Json::as_str)
            .ok_or_else(|| ArtifactError::Schema("missing `metrics_level`".into()))?;
        if MetricsLevel::parse(level).is_none() {
            return Err(ArtifactError::Schema(format!(
                "unknown metrics_level `{level}`"
            )));
        }
        for key in ["config", "report", "metrics"] {
            if json.get(key).and_then(Json::as_object).is_none() {
                return Err(ArtifactError::Schema(format!(
                    "missing or non-object `{key}` section"
                )));
            }
        }
        if json.get("ccqs_samples").and_then(Json::as_array).is_none() {
            return Err(ArtifactError::Schema(
                "missing or non-array `ccqs_samples`".into(),
            ));
        }
        let report = json.get("report").expect("checked above");
        for key in ["controller", "total_cycles", "kernels"] {
            if report.get(key).is_none() {
                return Err(ArtifactError::Schema(format!(
                    "report section missing `{key}`"
                )));
            }
        }
        if let Some(ts) = json.get("timeseries") {
            let schema = ts.get("schema").and_then(Json::as_str);
            if schema != Some(crate::telemetry::TIMESERIES_SCHEMA) {
                return Err(ArtifactError::Schema(format!(
                    "timeseries section has schema {schema:?} (expected `{}`)",
                    crate::telemetry::TIMESERIES_SCHEMA
                )));
            }
            if ts.get("series").and_then(Json::as_array).is_none() {
                return Err(ArtifactError::Schema(
                    "timeseries section missing `series` array".into(),
                ));
            }
        }
        Ok(RunArtifact { json })
    }
}

impl fmt::Display for RunArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_malformed_and_foreign_json() {
        assert!(matches!(
            RunArtifact::parse("{nope"),
            Err(ArtifactError::Json(_))
        ));
        assert!(matches!(
            RunArtifact::parse("{\"schema\":\"other/v9\"}"),
            Err(ArtifactError::Schema(_))
        ));
        assert!(matches!(
            RunArtifact::parse("{\"x\":1}"),
            Err(ArtifactError::Schema(_))
        ));
    }

    #[test]
    fn errors_display_their_cause() {
        let e = RunArtifact::parse("{\"schema\":\"other/v9\"}").unwrap_err();
        assert!(e.to_string().contains("other/v9"));
        let e = RunArtifact::parse("[").unwrap_err();
        assert!(e.to_string().contains("JSON"));
    }
}
