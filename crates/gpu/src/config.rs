//! Simulated-GPU configuration (Table II of the paper), plus the
//! canonical run identity ([`CanonicalConfig`]) every config-keyed
//! subsystem derives from.

use dynapar_engine::json::Json;
use dynapar_engine::metrics::MetricsLevel;
use dynapar_engine::fnv1a_64;

/// Warp scheduling discipline within an SMX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Greedy-Then-Oldest (Rogers et al., MICRO'12): keep issuing the same
    /// warp until it stalls, then fall back to the oldest ready warp. This
    /// is the paper's configuration.
    #[default]
    Gto,
    /// Plain round-robin, a-la loose fairness across ready warps.
    RoundRobin,
}

/// Where child CTAs are placed relative to their parents — the knob
/// behind LaPerm-style locality-aware scheduling (Wang et al., ISCA'16,
/// the paper's reference \[43\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CtaPlacement {
    /// Plain round-robin over SMXs (the paper's baseline CTA scheduler).
    #[default]
    RoundRobin,
    /// Prefer the SMX that ran the launching parent warp, falling back to
    /// round-robin when it is full: child kernels re-reading the parent's
    /// data find it in that core's L1.
    ParentAffinity,
}

/// How software-managed work queue (stream) ids are assigned to child
/// kernels (§II-B, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamPolicy {
    /// One fresh SWQ per child kernel — maximum concurrency; what the paper
    /// adopts for all experiments after the Fig. 8 study.
    #[default]
    PerChildKernel,
    /// All children of a given parent CTA share one SWQ and therefore
    /// serialize — the CUDA default when the program does not create
    /// streams explicitly.
    PerParentCta,
}

/// Device-side kernel launch overhead model (Table II):
/// `latency = a·x + b`, where `x` is the number of child kernels launched
/// so far by the launching warp. Calibrated by Wang et al. (the paper's
/// reference \[42\]) to
/// a = 1721 cycles, b = 20210 cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchOverheadModel {
    /// Per-prior-launch slope (cycles).
    pub a: u64,
    /// Fixed cost (cycles).
    pub b: u64,
    /// Pipeline cycles the *launching warp itself* spends in the runtime
    /// API call (the asynchronous push; small compared to `b`).
    pub api_call_cycles: u64,
    /// Per-CTA queue-insertion cost when a launch is coalesced by DTBL
    /// instead of creating a kernel (Wang et al., ISCA'15 report the
    /// aggregated path costs a small, constant per-block overhead).
    pub dtbl_per_cta_cycles: u64,
    /// Minimum cycles a kernel occupies its hardware work queue, measured
    /// from its first CTA dispatch: the head-of-queue setup/teardown cost
    /// that bounds how fast one HWQ can drain back-to-back small kernels.
    /// This is what makes a 25k-kernel launch storm crawl even though the
    /// kernels themselves are tiny (§III-B's queuing-latency argument).
    pub hwq_turnaround_cycles: u64,
}

impl LaunchOverheadModel {
    /// Arrival delay for the `x`-th launch by a warp (`x >= 1`).
    ///
    /// # Examples
    ///
    /// ```
    /// use dynapar_gpu::LaunchOverheadModel;
    /// let m = LaunchOverheadModel::default();
    /// assert_eq!(m.kernel_latency(1), 1721 + 20210);
    /// assert!(m.kernel_latency(10) > m.kernel_latency(1));
    /// ```
    #[inline]
    pub fn kernel_latency(&self, x: u64) -> u64 {
        self.a * x + self.b
    }
}

impl Default for LaunchOverheadModel {
    fn default() -> Self {
        LaunchOverheadModel {
            a: 1721,
            b: 20210,
            api_call_cycles: 1500,
            dtbl_per_cta_cycles: 150,
            hwq_turnaround_cycles: 500,
        }
    }
}

/// Memory-hierarchy configuration (Table II plus latency calibration knobs
/// GPGPU-Sim takes from its own config files).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Cache-line size in bytes (128 B on Kepler).
    pub line_bytes: u32,
    /// Per-SMX L1 data cache size in bytes (16 KB).
    pub l1_bytes: u32,
    /// L1 associativity (4).
    pub l1_ways: u32,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,
    /// Miss-status holding registers per SMX: the maximum L1 misses a
    /// core may have outstanding; further misses stall until one returns.
    /// The model charges one entry per *transaction* and never merges
    /// same-line requests (real MSHRs do), so the default is set well
    /// above physical MSHR counts to act as a backstop; tighten it for
    /// miss-storm ablations.
    pub l1_mshrs: u32,
    /// Number of L2 partitions (2 per memory controller × 6 MCs = 12).
    pub l2_partitions: u32,
    /// Bytes per L2 partition (128 KB; 1536 KB total).
    pub l2_partition_bytes: u32,
    /// L2 associativity (8).
    pub l2_ways: u32,
    /// L2 lookup latency in cycles (tag + data).
    pub l2_hit_latency: u64,
    /// Minimum cycles between two services at one L2 bank (throughput).
    pub l2_service_interval: u64,
    /// One-way interconnect (crossbar) latency in cycles.
    pub xbar_latency: u64,
    /// Number of memory controllers (6).
    pub memory_controllers: u32,
    /// DRAM banks per channel.
    pub dram_banks_per_channel: u32,
    /// Row-buffer size in bytes (per bank) — determines row-hit locality.
    pub dram_row_bytes: u32,
    /// DRAM latency on a row-buffer hit.
    pub dram_row_hit_latency: u64,
    /// DRAM latency on a row-buffer miss (precharge + activate + access).
    pub dram_row_miss_latency: u64,
    /// Minimum cycles between two services at one DRAM channel (bandwidth).
    pub dram_service_interval: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            line_bytes: 128,
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l1_hit_latency: 30,
            l1_mshrs: 1024,
            l2_partitions: 12,
            l2_partition_bytes: 128 * 1024,
            l2_ways: 8,
            l2_hit_latency: 60,
            l2_service_interval: 1,
            xbar_latency: 25,
            memory_controllers: 6,
            dram_banks_per_channel: 8,
            dram_row_bytes: 2 * 1024,
            dram_row_hit_latency: 120,
            dram_row_miss_latency: 260,
            dram_service_interval: 3,
        }
    }
}

/// Full simulated-GPU configuration.
///
/// [`GpuConfig::kepler_k20m`] reproduces Table II; the fields are public
/// knobs so experiments (e.g. Fig. 7's CTA-size sweep or HWQ-count
/// ablations) can vary one parameter at a time.
///
/// # Examples
///
/// ```
/// use dynapar_gpu::GpuConfig;
///
/// let cfg = GpuConfig::kepler_k20m();
/// assert_eq!(cfg.smx_count, 13);
/// assert_eq!(cfg.num_hwqs, 32);
/// assert_eq!(cfg.max_concurrent_ctas(), 13 * 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of SMXs (13 on K20m).
    pub smx_count: u32,
    /// Threads per warp (32).
    pub warp_size: u32,
    /// Maximum resident threads per SMX (2048).
    pub max_threads_per_smx: u32,
    /// Maximum resident CTAs per SMX (16).
    pub max_ctas_per_smx: u32,
    /// Register file size per SMX, in 32-bit registers (65536 = 64K regs).
    pub regs_per_smx: u32,
    /// Shared memory per SMX in bytes (48 KB).
    pub shmem_per_smx: u32,
    /// Warp instructions issued per SMX per cycle (dual warp scheduler = 2).
    pub issue_width: u32,
    /// Memory-level parallelism within one thread's work-item loop: how
    /// many rounds' memory requests may be outstanding before the warp
    /// stalls on the oldest. Models the MSHR/scoreboard overlap a serial
    /// loop enjoys on real hardware (a one-round child kernel gets none).
    pub mlp_depth: u32,
    /// Number of hardware work queues (32 — caps concurrent kernels).
    pub num_hwqs: u32,
    /// Grid Management Unit pending-pool capacity, in kernels.
    pub pending_pool_cap: u32,
    /// Maximum device-launch nesting depth (CUDA's default limit is 24);
    /// launch sites at deeper levels fail and compute inline.
    pub max_nesting_depth: u8,
    /// Cycles for the GMU to hand one CTA to an SMX.
    pub cta_dispatch_latency: u64,
    /// Warp scheduling discipline.
    pub scheduler: SchedulerKind,
    /// Child-CTA placement discipline.
    pub cta_placement: CtaPlacement,
    /// Stream (SWQ) assignment policy for child kernels.
    pub stream_policy: StreamPolicy,
    /// Device-launch overhead model.
    pub launch: LaunchOverheadModel,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// Timeline sampling period in cycles (Figs. 6, 19 use ~1000 cycles).
    pub sample_period: u64,
    /// Window length (log2 cycles) for the monitored-metric averages
    /// (§IV-B uses 1024-cycle windows → 10).
    pub metric_window_log2: u32,
    /// Hard cap on cycles before the simulator declares a hang (safety net
    /// for malformed workloads; `u64::MAX` disables).
    pub max_cycles: u64,
}

impl GpuConfig {
    /// The paper's simulated system: NVIDIA Tesla K20m-like (Table II).
    pub fn kepler_k20m() -> Self {
        GpuConfig {
            smx_count: 13,
            warp_size: 32,
            max_threads_per_smx: 2048,
            max_ctas_per_smx: 16,
            regs_per_smx: 65_536,
            shmem_per_smx: 48 * 1024,
            issue_width: 2,
            mlp_depth: 4,
            num_hwqs: 32,
            pending_pool_cap: 65_536,
            max_nesting_depth: 24,
            cta_dispatch_latency: 20,
            scheduler: SchedulerKind::Gto,
            cta_placement: CtaPlacement::RoundRobin,
            stream_policy: StreamPolicy::PerChildKernel,
            launch: LaunchOverheadModel::default(),
            mem: MemConfig::default(),
            sample_period: 1000,
            metric_window_log2: 10,
            max_cycles: u64::MAX,
        }
    }

    /// A Pascal-generation extrapolation (GP100-class): more, narrower
    /// cores, a bigger L2, and a cheaper device-launch path. The launch
    /// constants are *scaled estimates* (Pascal measurably reduced but
    /// did not eliminate DP launch costs), intended for the
    /// forward-looking sensitivity experiments, not for calibration
    /// claims.
    pub fn pascal_like() -> Self {
        let mut cfg = Self::kepler_k20m();
        cfg.smx_count = 28;
        cfg.max_threads_per_smx = 2048;
        cfg.max_ctas_per_smx = 32;
        cfg.regs_per_smx = 65_536;
        cfg.shmem_per_smx = 64 * 1024;
        cfg.mem.l2_partitions = 16;
        cfg.mem.memory_controllers = 8;
        cfg.mem.l2_partition_bytes = 256 * 1024; // 4 MB total
        cfg.launch.a = 900;
        cfg.launch.b = 11_000;
        cfg.launch.api_call_cycles = 800;
        cfg
    }

    /// A scaled-down configuration for fast unit tests: 2 SMXs, 4 HWQs,
    /// shallow memory. Same structure, two orders of magnitude cheaper.
    pub fn test_small() -> Self {
        let mut cfg = Self::kepler_k20m();
        cfg.smx_count = 2;
        cfg.max_threads_per_smx = 512;
        cfg.max_ctas_per_smx = 4;
        cfg.regs_per_smx = 16_384;
        cfg.shmem_per_smx = 16 * 1024;
        cfg.num_hwqs = 4;
        cfg.sample_period = 500;
        cfg
    }

    /// Maximum warps resident on one SMX.
    #[inline]
    pub fn max_warps_per_smx(&self) -> u32 {
        self.max_threads_per_smx / self.warp_size
    }

    /// Hardware limit on concurrently resident CTAs across the whole GPU
    /// (208 for the Table II machine, as quoted under Fig. 6).
    #[inline]
    pub fn max_concurrent_ctas(&self) -> u32 {
        self.smx_count * self.max_ctas_per_smx
    }

    /// Validates internal consistency; returns a human-readable complaint.
    ///
    /// # Errors
    ///
    /// Returns `Err` when a structural parameter is zero or inconsistent
    /// (e.g. L1 size not divisible by line size × ways).
    pub fn validate(&self) -> Result<(), String> {
        if self.smx_count == 0 {
            return Err("smx_count must be positive".into());
        }
        if self.warp_size == 0 || !self.warp_size.is_power_of_two() {
            return Err("warp_size must be a positive power of two".into());
        }
        if !self.max_threads_per_smx.is_multiple_of(self.warp_size) {
            return Err("max_threads_per_smx must be a multiple of warp_size".into());
        }
        if self.num_hwqs == 0 {
            return Err("num_hwqs must be positive".into());
        }
        if self.issue_width == 0 {
            return Err("issue_width must be positive".into());
        }
        if self.mlp_depth == 0 {
            return Err("mlp_depth must be at least 1".into());
        }
        let m = &self.mem;
        if m.line_bytes == 0 || !m.line_bytes.is_power_of_two() {
            return Err("line_bytes must be a positive power of two".into());
        }
        if !m.l1_bytes.is_multiple_of(m.line_bytes * m.l1_ways) {
            return Err("L1 size must be divisible by line_bytes * ways".into());
        }
        if !m.l2_partition_bytes.is_multiple_of(m.line_bytes * m.l2_ways) {
            return Err("L2 partition size must be divisible by line_bytes * ways".into());
        }
        if m.l1_mshrs == 0 {
            return Err("l1_mshrs must be positive".into());
        }
        if m.l2_partitions == 0 || m.memory_controllers == 0 {
            return Err("need at least one L2 partition and one MC".into());
        }
        if !m.l2_partitions.is_multiple_of(m.memory_controllers) {
            return Err("l2_partitions must be a multiple of memory_controllers".into());
        }
        if self.sample_period == 0 {
            return Err("sample_period must be positive".into());
        }
        if self.max_nesting_depth == 0 {
            return Err("max_nesting_depth must be at least 1".into());
        }
        Ok(())
    }

    /// Renders the full configuration as a JSON object (the artifact's
    /// config echo). Enum knobs render as their `Debug` spellings;
    /// `max_cycles` at `u64::MAX` renders as `null` (disabled).
    pub fn to_json(&self) -> Json {
        let l = &self.launch;
        let m = &self.mem;
        Json::obj([
            ("smx_count", Json::U64(self.smx_count as u64)),
            ("warp_size", Json::U64(self.warp_size as u64)),
            (
                "max_threads_per_smx",
                Json::U64(self.max_threads_per_smx as u64),
            ),
            ("max_ctas_per_smx", Json::U64(self.max_ctas_per_smx as u64)),
            ("regs_per_smx", Json::U64(self.regs_per_smx as u64)),
            ("shmem_per_smx", Json::U64(self.shmem_per_smx as u64)),
            ("issue_width", Json::U64(self.issue_width as u64)),
            ("mlp_depth", Json::U64(self.mlp_depth as u64)),
            ("num_hwqs", Json::U64(self.num_hwqs as u64)),
            ("pending_pool_cap", Json::U64(self.pending_pool_cap as u64)),
            ("max_nesting_depth", Json::U64(self.max_nesting_depth as u64)),
            ("cta_dispatch_latency", Json::U64(self.cta_dispatch_latency)),
            ("scheduler", Json::str(format!("{:?}", self.scheduler))),
            ("cta_placement", Json::str(format!("{:?}", self.cta_placement))),
            ("stream_policy", Json::str(format!("{:?}", self.stream_policy))),
            (
                "launch",
                Json::obj([
                    ("a", Json::U64(l.a)),
                    ("b", Json::U64(l.b)),
                    ("api_call_cycles", Json::U64(l.api_call_cycles)),
                    ("dtbl_per_cta_cycles", Json::U64(l.dtbl_per_cta_cycles)),
                    ("hwq_turnaround_cycles", Json::U64(l.hwq_turnaround_cycles)),
                ]),
            ),
            (
                "mem",
                Json::obj([
                    ("line_bytes", Json::U64(m.line_bytes as u64)),
                    ("l1_bytes", Json::U64(m.l1_bytes as u64)),
                    ("l1_ways", Json::U64(m.l1_ways as u64)),
                    ("l1_hit_latency", Json::U64(m.l1_hit_latency)),
                    ("l1_mshrs", Json::U64(m.l1_mshrs as u64)),
                    ("l2_partitions", Json::U64(m.l2_partitions as u64)),
                    ("l2_partition_bytes", Json::U64(m.l2_partition_bytes as u64)),
                    ("l2_ways", Json::U64(m.l2_ways as u64)),
                    ("l2_hit_latency", Json::U64(m.l2_hit_latency)),
                    ("l2_service_interval", Json::U64(m.l2_service_interval)),
                    ("xbar_latency", Json::U64(m.xbar_latency)),
                    ("memory_controllers", Json::U64(m.memory_controllers as u64)),
                    (
                        "dram_banks_per_channel",
                        Json::U64(m.dram_banks_per_channel as u64),
                    ),
                    ("dram_row_bytes", Json::U64(m.dram_row_bytes as u64)),
                    ("dram_row_hit_latency", Json::U64(m.dram_row_hit_latency)),
                    ("dram_row_miss_latency", Json::U64(m.dram_row_miss_latency)),
                    ("dram_service_interval", Json::U64(m.dram_service_interval)),
                ]),
            ),
            ("sample_period", Json::U64(self.sample_period)),
            ("metric_window_log2", Json::U64(self.metric_window_log2 as u64)),
            (
                "max_cycles",
                if self.max_cycles == u64::MAX {
                    Json::Null
                } else {
                    Json::U64(self.max_cycles)
                },
            ),
        ])
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::kepler_k20m()
    }
}

/// Schema tag stamped into every canonical-config JSON rendering.
pub const CANONICAL_CONFIG_SCHEMA: &str = "dynapar.canonical_config/v1";

/// Hashes any JSON tree in canonical form: object keys sorted
/// recursively, compact emission, FNV-1a 64 over the bytes.
///
/// This is the one hashing path in the workspace — the memo key, the
/// perf-baseline identity, and spec-workload fingerprints all funnel
/// through it — so two trees that differ only in member order always
/// hash identically, and any semantic difference (a changed value, an
/// added field) changes the hash.
///
/// # Examples
///
/// ```
/// use dynapar_engine::json::Json;
/// use dynapar_gpu::config::canonical_json_hash;
///
/// let a = Json::parse(r#"{"x":1,"y":2}"#).unwrap();
/// let b = Json::parse(r#"{"y":2,"x":1}"#).unwrap();
/// assert_eq!(canonical_json_hash(&a), canonical_json_hash(&b));
/// ```
pub fn canonical_json_hash(doc: &Json) -> u64 {
    fnv1a_64(doc.sorted().to_string().as_bytes())
}

/// The canonical identity of one simulation run: everything that
/// determines the run's output bytes, in one struct.
///
/// Before this type existed, three subsystems each answered "is this
/// the same run?" with its own ad-hoc field list: the server's memo key
/// would have compared request fields, the artifact echoed the raw
/// [`GpuConfig`], and the perf baseline gate compared `scale`/`seed`/
/// `queue` one key at a time. `CanonicalConfig` replaces all three with
/// a single derivation: build the canonical struct, hash it with
/// [`canonical_hash`](CanonicalConfig::canonical_hash), compare hashes.
///
/// **What is included:** the full [`GpuConfig`], the workload identity
/// string, the policy label, the generator seed, and the metrics level
/// (metrics change artifact bytes, so two levels are two identities).
///
/// **What is deliberately excluded:** host-side execution knobs that
/// are guaranteed byte-invisible — the event-queue backend, `--jobs`,
/// and `--sim-jobs` (the parallel backend's artifacts are byte-identical
/// to sequential at every worker count; the determinism suite pins
/// this). Excluding them is what lets a server memoize a `--sim-jobs 4`
/// submit with a sequential one: same identity, same bytes.
///
/// The `workload` string is a convention, not free text: suite runs use
/// `suite:<bench>@<scale>`, spec runs use `spec:<16-hex fnv of the spec
/// text>` (see `dynapar-server`'s request layer, which is the only
/// producer).
///
/// # Examples
///
/// ```
/// use dynapar_gpu::{CanonicalConfig, GpuConfig};
/// use dynapar_gpu::MetricsLevel;
///
/// let a = CanonicalConfig {
///     gpu: GpuConfig::kepler_k20m(),
///     workload: "suite:AMR@tiny".into(),
///     policy: "spawn".into(),
///     seed: 7,
///     metrics: MetricsLevel::Full,
/// };
/// let mut b = a.clone();
/// assert_eq!(a.canonical_hash(), b.canonical_hash());
/// b.seed = 8;
/// assert_ne!(a.canonical_hash(), b.canonical_hash());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalConfig {
    /// The simulated machine.
    pub gpu: GpuConfig,
    /// Canonical workload identity (`suite:NAME@SCALE` or `spec:HASH`).
    pub workload: String,
    /// Canonical policy label (e.g. `spawn`, `threshold:32`).
    pub policy: String,
    /// Workload-generator seed.
    pub seed: u64,
    /// Metrics level of the run (changes artifact bytes, so part of
    /// the identity).
    pub metrics: MetricsLevel,
}

impl CanonicalConfig {
    /// Renders the canonical identity as JSON (the hash preimage, before
    /// key sorting). The `schema` member means a future v2 identity can
    /// never collide with v1 hashes.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(CANONICAL_CONFIG_SCHEMA)),
            ("gpu", self.gpu.to_json()),
            ("workload", Json::str(self.workload.clone())),
            ("policy", Json::str(self.policy.clone())),
            ("seed", Json::U64(self.seed)),
            ("metrics", Json::str(self.metrics.as_str())),
        ])
    }

    /// The stable 64-bit identity hash: FNV-1a over the key-sorted
    /// compact JSON rendering of [`to_json`](CanonicalConfig::to_json).
    /// Stable across field reordering by construction; different for
    /// any semantic field change because every field is in the preimage.
    pub fn canonical_hash(&self) -> u64 {
        canonical_json_hash(&self.to_json())
    }

    /// [`canonical_hash`](CanonicalConfig::canonical_hash) as the
    /// 16-hex-digit string used on the wire and in artifacts.
    pub fn canonical_hex(&self) -> String {
        format!("{:016x}", self.canonical_hash())
    }

    /// The *warm-up prefix* identity: [`canonical_hash`] with the policy
    /// masked out. Two sweep points share a warm-up hash exactly when a
    /// pristine ramp snapshot (no launch decisions yet — see DESIGN.md
    /// §13) taken under one of them is a valid starting state for the
    /// other, so fork-sweep drivers group points by this value to
    /// simulate the shared ramp once.
    pub fn warmup_hash(&self) -> u64 {
        let mut masked = self.clone();
        masked.policy = "\u{0}warmup".into();
        masked.canonical_hash()
    }

    /// [`warmup_hash`](CanonicalConfig::warmup_hash) as 16 hex digits.
    pub fn warmup_hex(&self) -> String {
        format!("{:016x}", self.warmup_hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20m_matches_table_ii() {
        let cfg = GpuConfig::kepler_k20m();
        assert_eq!(cfg.smx_count, 13);
        assert_eq!(cfg.max_threads_per_smx, 2048);
        assert_eq!(cfg.max_warps_per_smx(), 64);
        assert_eq!(cfg.max_ctas_per_smx, 16);
        assert_eq!(cfg.num_hwqs, 32);
        assert_eq!(cfg.shmem_per_smx, 48 * 1024);
        assert_eq!(cfg.regs_per_smx, 65_536);
        assert_eq!(cfg.mem.l2_partition_bytes * cfg.mem.l2_partitions, 1536 * 1024);
        assert_eq!(cfg.launch.a, 1721);
        assert_eq!(cfg.launch.b, 20210);
        assert_eq!(cfg.max_concurrent_ctas(), 208);
        cfg.validate().expect("table II config must validate");
    }

    #[test]
    fn test_small_validates() {
        GpuConfig::test_small().validate().expect("valid");
    }

    #[test]
    fn pascal_like_validates_and_scales_up() {
        let p = GpuConfig::pascal_like();
        p.validate().expect("valid");
        let k = GpuConfig::kepler_k20m();
        assert!(p.smx_count > k.smx_count);
        assert!(p.max_concurrent_ctas() > k.max_concurrent_ctas());
        assert!(p.launch.b < k.launch.b, "Pascal's launch path is cheaper");
        assert!(
            p.mem.l2_partition_bytes * p.mem.l2_partitions
                > k.mem.l2_partition_bytes * k.mem.l2_partitions
        );
    }

    #[test]
    fn launch_latency_formula() {
        let m = LaunchOverheadModel::default();
        assert_eq!(m.kernel_latency(1), 21_931);
        assert_eq!(m.kernel_latency(10), 17_210 + 20_210);
    }

    #[test]
    fn validate_rejects_broken_configs() {
        let mut cfg = GpuConfig::kepler_k20m();
        cfg.smx_count = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = GpuConfig::kepler_k20m();
        cfg.warp_size = 33;
        assert!(cfg.validate().is_err());

        let mut cfg = GpuConfig::kepler_k20m();
        cfg.mem.l1_bytes = 1000; // not divisible by 128*4
        assert!(cfg.validate().is_err());

        let mut cfg = GpuConfig::kepler_k20m();
        cfg.mem.l2_partitions = 7; // not a multiple of 6 MCs
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn json_echo_covers_every_knob() {
        let cfg = GpuConfig::kepler_k20m();
        let json = cfg.to_json();
        assert_eq!(json.get("smx_count").unwrap().as_u64(), Some(13));
        assert_eq!(json.get("scheduler").unwrap().as_str(), Some("Gto"));
        assert_eq!(json.get("max_cycles"), Some(&Json::Null));
        assert_eq!(
            json.get("launch").unwrap().get("b").unwrap().as_u64(),
            Some(20210)
        );
        assert_eq!(
            json.get("mem").unwrap().get("l2_partitions").unwrap().as_u64(),
            Some(12)
        );
        let text = json.to_string();
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn defaults_are_kepler() {
        assert_eq!(GpuConfig::default(), GpuConfig::kepler_k20m());
        assert_eq!(SchedulerKind::default(), SchedulerKind::Gto);
        assert_eq!(StreamPolicy::default(), StreamPolicy::PerChildKernel);
    }

    fn canon() -> CanonicalConfig {
        CanonicalConfig {
            gpu: GpuConfig::kepler_k20m(),
            workload: "suite:BFS-graph500@paper".into(),
            policy: "spawn".into(),
            seed: 0xD7_2017,
            metrics: MetricsLevel::Full,
        }
    }

    #[test]
    fn canonical_hash_ignores_member_order() {
        let doc = canon().to_json();
        // Reverse the top-level member order and nest-shuffle: the sorted
        // canonical form must make both trees hash identically.
        let mut members: Vec<(String, Json)> = match &doc {
            Json::Obj(m) => m.clone(),
            _ => unreachable!(),
        };
        members.reverse();
        let shuffled = Json::Obj(members);
        assert_ne!(doc.to_string(), shuffled.to_string());
        assert_eq!(canonical_json_hash(&doc), canonical_json_hash(&shuffled));
    }

    #[test]
    fn canonical_hash_differs_on_every_semantic_field() {
        let base = canon().canonical_hash();
        let mut c = canon();
        c.gpu.smx_count += 1;
        assert_ne!(c.canonical_hash(), base, "gpu knob must change hash");
        let mut c = canon();
        c.workload = "suite:BFS-graph500@tiny".into();
        assert_ne!(c.canonical_hash(), base, "workload must change hash");
        let mut c = canon();
        c.policy = "threshold:32".into();
        assert_ne!(c.canonical_hash(), base, "policy must change hash");
        let mut c = canon();
        c.seed ^= 1;
        assert_ne!(c.canonical_hash(), base, "seed must change hash");
        let mut c = canon();
        c.metrics = MetricsLevel::Summary;
        assert_ne!(c.canonical_hash(), base, "metrics level must change hash");
    }

    #[test]
    fn canonical_hash_is_stable_and_hex_is_16_digits() {
        let a = canon();
        let b = canon();
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        let hex = a.canonical_hex();
        assert_eq!(hex.len(), 16);
        assert!(hex.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(u64::from_str_radix(&hex, 16).unwrap(), a.canonical_hash());
    }

    #[test]
    fn canonical_json_embeds_schema_tag() {
        let doc = canon().to_json();
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some(CANONICAL_CONFIG_SCHEMA)
        );
    }
}
