//! Snapshot container format and shared value serializers.
//!
//! A snapshot is one UTF-8 JSON header line followed by the raw binary
//! simulation state (DESIGN.md §13):
//!
//! ```text
//! {"schema":"dynapar-snapshot/1","job":{...},"state_len":N,"state_fnv":H}\n
//! <N bytes of ByteWriter-encoded state>
//! ```
//!
//! The header carries the job description needed to rebuild the static
//! half of the simulation (config, workload, policy, seed, metrics); the
//! binary body carries only dynamic state, written with the checked
//! fixed-width readers/writers of [`dynapar_engine::snap`]. `state_len`
//! and the FNV-1a checksum reject truncated or corrupted files before
//! any state decoding starts.
//!
//! This module also hosts the value serializers for the work-model types
//! whose fields are crate-visible ([`ThreadWork`], [`ThreadSource`],
//! [`WorkClass`]); stateful components with private fields (SMXs, the
//! GMU, the memory system, the spec table) implement
//! `encode_state`/`decode_state` in their own modules.

use std::sync::{Mutex, OnceLock};

use dynapar_engine::json::Json;
use dynapar_engine::snap::{ByteReader, ByteWriter, SnapError};
use dynapar_engine::{fnv1a_64, Cycle};

use crate::work::{ThreadSource, ThreadWork, WorkClass};

/// Schema tag of the snapshot container (header `schema` field).
pub const SNAPSHOT_SCHEMA: &str = "dynapar-snapshot/1";

/// Frames `state` behind a header line carrying `job` and integrity
/// fields; the result is the full snapshot file/fork image.
pub fn write_snapshot(job: &Json, state: &[u8]) -> Vec<u8> {
    let header = Json::obj([
        ("schema", Json::str(SNAPSHOT_SCHEMA)),
        ("job", job.clone()),
        ("state_len", Json::U64(state.len() as u64)),
        ("state_fnv", Json::U64(fnv1a_64(state))),
    ]);
    let mut out = header.to_string().into_bytes();
    out.push(b'\n');
    out.extend_from_slice(state);
    out
}

/// Splits a snapshot image into its job header and verified state bytes.
///
/// # Errors
///
/// Rejects a missing/non-UTF-8/non-JSON header line, a schema mismatch,
/// a body whose length differs from `state_len` (truncation or trailing
/// garbage), and a body whose FNV-1a checksum differs from `state_fnv`.
pub fn parse_snapshot(bytes: &[u8]) -> Result<(Json, &[u8]), SnapError> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(SnapError::Invalid("snapshot missing header line"))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| SnapError::Invalid("snapshot header is not UTF-8"))?;
    let json =
        Json::parse(header).map_err(|e| SnapError::Corrupt(format!("snapshot header: {e:?}")))?;
    match json.get("schema").and_then(Json::as_str) {
        Some(SNAPSHOT_SCHEMA) => {}
        Some(other) => return Err(SnapError::Corrupt(format!("unknown snapshot schema {other:?}"))),
        None => return Err(SnapError::Invalid("snapshot header lacks a schema tag")),
    }
    let state = &bytes[nl + 1..];
    let want_len = json
        .get("state_len")
        .and_then(Json::as_u64)
        .ok_or(SnapError::Invalid("snapshot header lacks state_len"))?;
    if state.len() as u64 != want_len {
        return Err(SnapError::Corrupt(format!(
            "snapshot state is {} bytes, header says {want_len}",
            state.len()
        )));
    }
    let want_fnv = json
        .get("state_fnv")
        .and_then(Json::as_u64)
        .ok_or(SnapError::Invalid("snapshot header lacks state_fnv"))?;
    let got_fnv = fnv1a_64(state);
    if got_fnv != want_fnv {
        return Err(SnapError::Corrupt(format!(
            "snapshot state checksum {got_fnv:#x} != header {want_fnv:#x}"
        )));
    }
    let job = json
        .get("job")
        .cloned()
        .ok_or(SnapError::Invalid("snapshot header lacks a job"))?;
    Ok((job, state))
}

/// Human-readable comparison of two snapshot images (the CLI's
/// `snap-diff`): lists every header field whose value differs, then
/// locates the first divergent byte of the binary state and attributes
/// it to the outermost encode-order section it falls in.
///
/// Corrupt inputs are reported rather than rejected — diffing a good
/// snapshot against a truncated or bit-flipped one is exactly the
/// debugging situation this exists for — but a snapshot whose header
/// line cannot be parsed at all ends the comparison at that finding.
pub fn diff_snapshots(a: &[u8], b: &[u8]) -> String {
    let mut out = String::new();
    let mut push = |line: &str| {
        out.push_str(line);
        out.push('\n');
    };
    if a == b {
        push(&format!("identical ({} bytes)", a.len()));
        return out;
    }
    let parse_header = |bytes: &[u8]| -> Result<(Json, usize), String> {
        let nl = bytes
            .iter()
            .position(|&x| x == b'\n')
            .ok_or("missing header line")?;
        let text = std::str::from_utf8(&bytes[..nl]).map_err(|_| "header is not UTF-8")?;
        let json = Json::parse(text).map_err(|e| format!("header: {e:?}"))?;
        Ok((json, nl + 1))
    };
    let (ha, sa) = match parse_header(a) {
        Ok((h, off)) => (h, &a[off..]),
        Err(e) => {
            push(&format!("A: unreadable snapshot ({e})"));
            return out;
        }
    };
    let (hb, sb) = match parse_header(b) {
        Ok((h, off)) => (h, &b[off..]),
        Err(e) => {
            push(&format!("B: unreadable snapshot ({e})"));
            return out;
        }
    };
    // Integrity first: a checksum mismatch means the state bytes below
    // are corrupt, not a semantic divergence — say so up front.
    for (name, header, state) in [("A", &ha, sa), ("B", &hb, sb)] {
        if let Some(want) = header.get("state_len").and_then(Json::as_u64) {
            if state.len() as u64 != want {
                push(&format!(
                    "{name}: corrupt: state is {} bytes, header says {want}",
                    state.len()
                ));
            }
        }
        if let Some(want) = header.get("state_fnv").and_then(Json::as_u64) {
            if fnv1a_64(state) != want {
                push(&format!("{name}: corrupt: state checksum does not match header"));
            }
        }
    }
    // Header fields, with the job object flattened one level so the
    // interesting keys (cycle, policy, config_fnv, ...) print by name.
    let flatten = |h: &Json| -> Vec<(String, String)> {
        let mut fields = Vec::new();
        if let Some(members) = h.as_object() {
            for (k, v) in members {
                match (k.as_str(), v.as_object()) {
                    ("job", Some(inner)) => {
                        for (jk, jv) in inner {
                            fields.push((format!("job.{jk}"), jv.to_string()));
                        }
                    }
                    _ => fields.push((k.clone(), v.to_string())),
                }
            }
        }
        fields
    };
    let fa = flatten(&ha);
    let fb = flatten(&hb);
    let mut differs = false;
    for (k, va) in &fa {
        match fb.iter().find(|(bk, _)| bk == k) {
            Some((_, vb)) if va == vb => {}
            Some((_, vb)) => {
                push(&format!("header {k}: A={va} B={vb}"));
                differs = true;
            }
            None => {
                push(&format!("header {k}: A={va} B=<absent>"));
                differs = true;
            }
        }
    }
    for (k, vb) in &fb {
        if !fa.iter().any(|(ak, _)| ak == k) {
            push(&format!("header {k}: A=<absent> B={vb}"));
            differs = true;
        }
    }
    if !differs {
        push("header: identical");
    }
    // Binary state: first divergent byte, attributed to a section.
    let common = sa.len().min(sb.len());
    let div = (0..common).find(|&i| sa[i] != sb[i]);
    match div {
        None if sa.len() == sb.len() => push("state: identical"),
        None => push(&format!(
            "state: A is a {}-byte prefix match, lengths differ ({} vs {} bytes)",
            common,
            sa.len(),
            sb.len()
        )),
        Some(i) => push(&format!(
            "state: first divergent byte at offset {i} (A={:#04x} B={:#04x}) in section `{}`; \
             lengths {} vs {} bytes",
            sa[i],
            sb[i],
            state_section_at(i, sa),
            sa.len(),
            sb.len()
        )),
    }
    out
}

/// Names the encode-order section of `Simulation::encode_state` that
/// byte offset `i` of `state` falls in. The fixed scalar prefix and the
/// global event queue are resolved exactly (entry by entry); everything
/// past the event queue is attributed to the component blob that
/// follows it. Must mirror the encode order in `sim.rs`.
fn state_section_at(i: usize, state: &[u8]) -> String {
    let mut pos = 0usize;
    for (name, size) in [
        ("now", 8),
        ("live_kernels", 4),
        ("next_stream", 4),
        ("warp_seq", 8),
        ("rr_smx", 8),
    ] {
        if i < pos + size {
            return name.to_string();
        }
        pos += size;
    }
    // dispatch_at: option tag byte, then 8 payload bytes when set.
    let opt_len = match state.get(pos) {
        Some(0) => 1,
        _ => 9,
    };
    if i < pos + opt_len {
        return "dispatch_at".to_string();
    }
    pos += opt_len;
    if i < pos + 8 {
        return "event queue (total_pushed)".to_string();
    }
    pos += 8;
    let count = state
        .get(pos..pos + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
        .unwrap_or(0);
    if i < pos + 8 {
        return "event queue (entry count)".to_string();
    }
    pos += 8;
    for k in 0..count {
        // One entry: time u64, then the `put_ev` tag + payload (sizes
        // mirror `put_ev` in sim.rs).
        let tag = state.get(pos + 8).copied();
        let payload = match tag {
            Some(0) => 4,  // KernelArrive(kernel u32)
            Some(1) => 8,  // AggArrive { kernel u32, count u32 }
            Some(2) => 0,  // Dispatch
            Some(3) => 5,  // CtaStart { smx u8, cta_slot u32 }
            Some(4) => 1,  // SmxWork(smx u8)
            Some(5) => 4,  // HwqRelease(kernel u32)
            Some(6) => 0,  // Sample
            _ => return format!("event queue entry {k} (unrecognized tag)"),
        };
        let len = 8 + 1 + payload;
        if i < pos + len {
            return format!("event queue entry {k}");
        }
        pos += len;
    }
    "component state (GMU / SMXs / memory / kernels / specs / statistics)".to_string()
}

/// Interns a decoded work-class label as `&'static str`.
///
/// [`WorkClass::label`] is a static string by design (labels come from
/// workload-generator literals); a snapshot restores labels by leaking
/// one copy per distinct string into a process-global table, so repeated
/// resumes in one process never grow memory past the label vocabulary.
pub(crate) fn intern_label(s: &str) -> &'static str {
    static LABELS: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut table = LABELS
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("label intern table poisoned");
    if let Some(&l) = table.iter().find(|&&l| l == s) {
        return l;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    table.push(leaked);
    leaked
}

pub(crate) fn put_cycle(w: &mut ByteWriter, c: Cycle) {
    w.put_u64(c.as_u64());
}

pub(crate) fn get_cycle(r: &mut ByteReader<'_>) -> Result<Cycle, SnapError> {
    Ok(Cycle(r.get_u64()?))
}

pub(crate) fn put_opt_u64(w: &mut ByteWriter, v: Option<u64>) {
    match v {
        Some(x) => {
            w.put_u8(1);
            w.put_u64(x);
        }
        None => w.put_u8(0),
    }
}

pub(crate) fn get_opt_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>, SnapError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.get_u64()?)),
        tag => Err(SnapError::BadTag { what: "Option<u64>", tag }),
    }
}

pub(crate) fn put_opt_u32(w: &mut ByteWriter, v: Option<u32>) {
    match v {
        Some(x) => {
            w.put_u8(1);
            w.put_u32(x);
        }
        None => w.put_u8(0),
    }
}

pub(crate) fn get_opt_u32(r: &mut ByteReader<'_>) -> Result<Option<u32>, SnapError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.get_u32()?)),
        tag => Err(SnapError::BadTag { what: "Option<u32>", tag }),
    }
}

pub(crate) fn put_opt_cycle(w: &mut ByteWriter, v: Option<Cycle>) {
    put_opt_u64(w, v.map(|c| c.as_u64()));
}

pub(crate) fn get_opt_cycle(r: &mut ByteReader<'_>) -> Result<Option<Cycle>, SnapError> {
    Ok(get_opt_u64(r)?.map(Cycle))
}

pub(crate) fn encode_thread_work(t: &ThreadWork, w: &mut ByteWriter) {
    w.put_u32(t.items);
    w.put_u64(t.seq_base);
    w.put_u64(t.rand_seed);
}

pub(crate) fn decode_thread_work(r: &mut ByteReader<'_>) -> Result<ThreadWork, SnapError> {
    Ok(ThreadWork {
        items: r.get_u32()?,
        seq_base: r.get_u64()?,
        rand_seed: r.get_u64()?,
    })
}

pub(crate) fn encode_source(s: &ThreadSource, w: &mut ByteWriter) {
    match s {
        ThreadSource::Explicit(v) => {
            w.put_u8(0);
            w.put_len(v.len());
            for t in v.iter() {
                encode_thread_work(t, w);
            }
        }
        ThreadSource::Derived {
            origin,
            items_per_thread,
        } => {
            w.put_u8(1);
            encode_thread_work(origin, w);
            w.put_u32(*items_per_thread);
        }
    }
}

pub(crate) fn decode_source(r: &mut ByteReader<'_>) -> Result<ThreadSource, SnapError> {
    match r.get_u8()? {
        0 => {
            let n = r.get_len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(decode_thread_work(r)?);
            }
            Ok(ThreadSource::Explicit(v.into()))
        }
        1 => Ok(ThreadSource::Derived {
            origin: decode_thread_work(r)?,
            items_per_thread: r.get_u32()?,
        }),
        tag => Err(SnapError::BadTag { what: "ThreadSource", tag }),
    }
}

pub(crate) fn encode_class(c: &WorkClass, w: &mut ByteWriter) {
    w.put_str(c.label);
    w.put_u32(c.compute_per_item);
    w.put_u32(c.init_cycles);
    w.put_u32(c.seq_bytes_per_item);
    w.put_u8(c.rand_refs_per_item);
    w.put_u64(c.rand_region_base);
    w.put_u64(c.rand_region_bytes);
    w.put_u8(c.writes_per_item);
}

pub(crate) fn decode_class(r: &mut ByteReader<'_>) -> Result<WorkClass, SnapError> {
    Ok(WorkClass {
        label: intern_label(&r.get_str()?),
        compute_per_item: r.get_u32()?,
        init_cycles: r.get_u32()?,
        seq_bytes_per_item: r.get_u32()?,
        rand_refs_per_item: r.get_u8()?,
        rand_region_base: r.get_u64()?,
        rand_region_bytes: r.get_u64()?,
        writes_per_item: r.get_u8()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_round_trips_job_and_state() {
        let job = Json::obj([("policy", Json::str("spawn")), ("seed", Json::U64(7))]);
        let state = vec![1u8, 2, 3, 4, 5];
        let img = write_snapshot(&job, &state);
        let (job_back, state_back) = parse_snapshot(&img).expect("valid image");
        assert_eq!(job_back.get("policy").and_then(Json::as_str), Some("spawn"));
        assert_eq!(job_back.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(state_back, &state[..]);
    }

    #[test]
    fn diff_reports_header_fields_and_first_divergent_state_byte() {
        let job = |cycle: u64| Json::obj([("cycle", Json::U64(cycle))]);
        let a = write_snapshot(&job(5), &[1, 2, 3, 4]);
        assert!(diff_snapshots(&a, &a).starts_with("identical"));

        // Different header field and one differing state byte: both the
        // flattened job key and the byte offset (with its encode-order
        // section) are named.
        let b = write_snapshot(&job(9), &[1, 2, 9, 4]);
        let out = diff_snapshots(&a, &b);
        assert!(out.contains("header job.cycle: A=5 B=9"), "{out}");
        assert!(out.contains("header state_fnv:"), "{out}");
        assert!(
            out.contains("state: first divergent byte at offset 2"),
            "{out}"
        );
        assert!(out.contains("in section `now`"), "{out}");

        // A truncated side is flagged corrupt, and the state compare
        // degrades to a prefix/length report instead of a byte diff.
        let out = diff_snapshots(&a, &a[..a.len() - 1]);
        assert!(out.contains("B: corrupt: state is 3 bytes, header says 4"), "{out}");
        assert!(out.contains("lengths differ (4 vs 3 bytes)"), "{out}");

        // An unreadable header ends the comparison with a finding, not
        // a panic or an Err.
        let out = diff_snapshots(b"not a snapshot", &a);
        assert!(out.contains("A: unreadable snapshot"), "{out}");
    }

    #[test]
    fn truncated_and_corrupted_images_are_rejected() {
        let job = Json::obj([("seed", Json::U64(1))]);
        let img = write_snapshot(&job, &[9u8; 64]);
        // Truncated body: length check fires.
        let err = parse_snapshot(&img[..img.len() - 3]).expect_err("truncated");
        assert!(err.to_string().contains("bytes"), "{err}");
        // Flipped state byte: checksum check fires.
        let mut bad = img.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        let err = parse_snapshot(&bad).expect_err("corrupted");
        assert!(err.to_string().contains("checksum"), "{err}");
        // Missing header newline entirely.
        assert!(parse_snapshot(b"no newline here").is_err());
        // Wrong schema tag.
        let other = write_snapshot(&job, &[1]);
        let txt = String::from_utf8(other).unwrap().replace("snapshot/1", "snapshot/9");
        assert!(parse_snapshot(txt.as_bytes()).is_err());
    }

    #[test]
    fn label_interning_dedups_and_outlives() {
        let a = intern_label("snap-test-label-alpha");
        let b = intern_label("snap-test-label-alpha");
        assert!(std::ptr::eq(a, b), "same string must intern to one leak");
        assert_eq!(a, "snap-test-label-alpha");
    }

    #[test]
    fn work_model_values_round_trip() {
        let class = WorkClass {
            label: "rt-class",
            compute_per_item: 24,
            init_cycles: 40,
            seq_bytes_per_item: 8,
            rand_refs_per_item: 2,
            rand_region_base: 0x4000_0000,
            rand_region_bytes: 1 << 20,
            writes_per_item: 1,
        };
        let sources = [
            ThreadSource::Explicit(
                vec![ThreadWork::with_items(3), ThreadWork { items: 9, seq_base: 64, rand_seed: 5 }]
                    .into(),
            ),
            ThreadSource::Derived {
                origin: ThreadWork { items: 100, seq_base: 4096, rand_seed: 77 },
                items_per_thread: 4,
            },
        ];
        let mut w = ByteWriter::new();
        encode_class(&class, &mut w);
        for s in &sources {
            encode_source(s, &mut w);
        }
        put_opt_cycle(&mut w, Some(Cycle(41)));
        put_opt_u32(&mut w, None);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let class_back = decode_class(&mut r).unwrap();
        assert_eq!(class_back, class);
        for s in &sources {
            let back = decode_source(&mut r).unwrap();
            assert_eq!(back.thread_count(), s.thread_count());
            assert_eq!(back.total_items(), s.total_items());
            assert_eq!(back.thread(1, 8), s.thread(1, 8));
        }
        assert_eq!(get_opt_cycle(&mut r).unwrap(), Some(Cycle(41)));
        assert_eq!(get_opt_u32(&mut r).unwrap(), None);
        r.finish().unwrap();
    }
}
