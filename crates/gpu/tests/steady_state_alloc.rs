//! Direct verification of the zero-allocation steady state (DESIGN.md
//! §11): heap allocations during a run must scale with the number of
//! kernels/CTAs, **not** with the number of warp rounds executed. Wall
//! clock is too noisy to prove an allocation claim; counting the
//! allocator's calls is exact and machine-independent.
//!
//! The probe workload is a single flat kernel (no DP, so the kernel
//! table does not grow) whose per-thread item count — and therefore
//! round count and event count — is the only variable. If the per-round
//! paths (lane access, coalescing, `warp_read`, wakeup scheduling)
//! allocate, the longer run's allocation count scales with its ~16×
//! round count and the ratio assertion fails.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dynapar_gpu::{
    GpuConfig, KernelDesc, SimBackend, SimWindow, Simulation, ThreadSource, ThreadWork, WorkClass,
};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs one flat kernel with `items_per_thread` rounds per thread and
/// returns `(allocations during run, events processed)`.
fn run_and_count(items_per_thread: u32) -> (u64, u64) {
    run_and_count_on(items_per_thread, SimBackend::Seq)
}

/// Same probe on an explicit simulation backend.
fn run_and_count_on(items_per_thread: u32, backend: SimBackend) -> (u64, u64) {
    run_and_count_windowed(items_per_thread, backend, SimWindow::default())
}

/// Same probe at an explicit lookahead-window policy.
fn run_and_count_windowed(
    items_per_thread: u32,
    backend: SimBackend,
    window: SimWindow,
) -> (u64, u64) {
    let threads = 2048u64;
    let class = WorkClass {
        label: "probe",
        compute_per_item: 4,
        init_cycles: 10,
        seq_bytes_per_item: 8,
        rand_refs_per_item: 1,
        rand_region_base: 0x8000_0000,
        rand_region_bytes: 1 << 20,
        writes_per_item: 0,
    };
    let mut sim = Simulation::builder(GpuConfig::kepler_k20m())
        .backend(backend)
        .sim_window(window)
        .build();
    sim.launch_host(KernelDesc {
        name: "probe".into(),
        cta_threads: 128,
        regs_per_thread: 16,
        shmem_per_cta: 0,
        class: Arc::new(class),
        source: ThreadSource::Derived {
            origin: ThreadWork::with_items(threads as u32 * items_per_thread),
            items_per_thread,
        },
        dp: None,
    });
    let before = ALLOCS.load(Ordering::Relaxed);
    let outcome = sim.run();
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    (during, outcome.report.events_processed)
}

#[test]
fn round_count_does_not_drive_allocations() {
    // Warm up once so lazily initialized process state (stdio, runtime
    // tables) is not charged to the first measured run.
    let _ = run_and_count(8);
    if std::env::var_os("DYNAPAR_ALLOC").is_some_and(|v| v == "print") {
        for ipt in [32, 64, 128, 256, 512, 1024] {
            let (a, e) = run_and_count(ipt);
            println!("ipt {ipt:>5}: {a:>8} allocs {e:>9} events");
        }
        return;
    }
    // Measure past the warm-up knee (buffer capacities and wheel bucket
    // reuse converge over the first few thousand events), where the
    // steady-state claim actually applies.
    let (short_allocs, short_events) = run_and_count(256);
    let (long_allocs, long_events) = run_and_count(1024);
    assert!(
        long_events > short_events * 3,
        "probe failed to scale the event count ({short_events} -> {long_events})"
    );
    // Identical kernel/CTA structure; only rounds grew (~4x the events,
    // ~100k more). The steady-state paths are allocation-free, so the
    // counts stay within a small additive slack (Vec doublings of the
    // timeline/report accumulators) instead of tracking the event ratio.
    let growth = long_allocs.saturating_sub(short_allocs);
    assert!(
        growth < 1024,
        "allocations scale with rounds: {short_allocs} allocs at {short_events} events, \
         {long_allocs} allocs at {long_events} events (+{growth}) — a per-round path is \
         allocating"
    );
}

#[test]
fn parallel_backend_rounds_do_not_drive_allocations() {
    // The conservative-window backend moves shards into the pool by
    // `mem::replace` with pre-built spares and replays effects from
    // reused per-shard op/miss arenas, so its per-window cost must also
    // be allocation-free once warm. Pool spawn/teardown (threads,
    // channels) happens once per run and is identical for both probe
    // lengths, so the same additive-slack assertion applies.
    let backend = SimBackend::Par(2);
    let _ = run_and_count_on(8, backend);
    let (short_allocs, short_events) = run_and_count_on(256, backend);
    let (long_allocs, long_events) = run_and_count_on(1024, backend);
    assert!(
        long_events > short_events * 3,
        "probe failed to scale the event count ({short_events} -> {long_events})"
    );
    let growth = long_allocs.saturating_sub(short_allocs);
    assert!(
        growth < 1024,
        "parallel-backend allocations scale with rounds: {short_allocs} allocs at \
         {short_events} events, {long_allocs} allocs at {long_events} events (+{growth}) — \
         a per-window path is allocating"
    );
}

#[test]
fn multi_cycle_span_arenas_do_not_drive_allocations() {
    // Wide fixed windows make every shipped shard record many ticks per
    // span into its tick/op/miss/guard-key arenas before the merge
    // replays them. Those arenas reset in place after each replay, so
    // once their high-water capacity is reached the per-span cost must
    // be allocation-free — longer runs (≈4× the rounds, and therefore
    // ≈4× the recorded span ticks) may not allocate more than the same
    // additive slack.
    let backend = SimBackend::Par(2);
    let window = SimWindow::Fixed(64);
    let _ = run_and_count_windowed(8, backend, window);
    let (short_allocs, short_events) = run_and_count_windowed(256, backend, window);
    let (long_allocs, long_events) = run_and_count_windowed(1024, backend, window);
    assert!(
        long_events > short_events * 3,
        "probe failed to scale the event count ({short_events} -> {long_events})"
    );
    let growth = long_allocs.saturating_sub(short_allocs);
    assert!(
        growth < 1024,
        "span-arena allocations scale with recorded ticks: {short_allocs} allocs at \
         {short_events} events, {long_allocs} allocs at {long_events} events (+{growth}) — \
         a per-span path is allocating"
    );
}
