//! Randomized tests for the GPU simulator's data structures, checked
//! against reference models. Driven by a seeded [`DetRng`] (no external
//! test dependencies); failures report the case index for replay.

use std::collections::HashSet;

use dynapar_engine::{Cycle, DetRng};
use dynapar_gpu::mem::{coalesce_lines, Cache, DramChannel};
use dynapar_gpu::{ThreadSource, ThreadWork};

const CASES: u64 = 64;

/// Reference LRU cache using a vector of (set, line) with explicit
/// recency ordering.
struct RefLru {
    sets: usize,
    ways: usize,
    // Per set: most-recent-last list of lines.
    content: Vec<Vec<u64>>,
}

impl RefLru {
    fn new(sets: usize, ways: usize) -> Self {
        RefLru {
            sets,
            ways,
            content: vec![Vec::new(); sets],
        }
    }
    fn probe_fill(&mut self, line: u64) -> bool {
        let set = (line % self.sets as u64) as usize;
        let list = &mut self.content[set];
        if let Some(pos) = list.iter().position(|&l| l == line) {
            list.remove(pos);
            list.push(line);
            true
        } else {
            if list.len() == self.ways {
                list.remove(0);
            }
            list.push(line);
            false
        }
    }
}

#[test]
fn cache_matches_reference_lru() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x1c4c_0000 + case);
        let sets = 1 + rng.below(7) as usize;
        let ways = 1 + rng.below(4) as usize;
        let lines: Vec<u64> = (0..1 + rng.below(499)).map(|_| rng.below(256)).collect();
        let mut dut = Cache::new(sets, ways);
        let mut reference = RefLru::new(sets, ways);
        for &l in &lines {
            assert_eq!(
                dut.probe_fill(l),
                reference.probe_fill(l),
                "case {case} line {l}"
            );
        }
    }
}

#[test]
fn cache_hit_rate_bounds() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x2c4c_0000 + case);
        let lines: Vec<u64> = (0..1 + rng.below(299)).map(|_| rng.below(64)).collect();
        let mut c = Cache::new(4, 4);
        for &l in &lines {
            c.probe_fill(l);
        }
        assert!(c.hit_rate() >= 0.0 && c.hit_rate() <= 1.0, "case {case}");
        assert_eq!(c.accesses(), lines.len() as u64, "case {case}");
    }
}

#[test]
fn coalescer_matches_hashset() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x3c0a_0000 + case);
        let addrs: Vec<u64> = (0..rng.below(128)).map(|_| rng.below(1_000_000)).collect();
        let mut v = addrs.clone();
        coalesce_lines(&mut v, 128);
        let expect: HashSet<u64> = addrs.iter().map(|a| a >> 7).collect();
        assert_eq!(v.len(), expect.len(), "case {case}");
        for &l in &v {
            assert!(expect.contains(&l), "case {case}");
        }
        // Sorted, deduped.
        for w in v.windows(2) {
            assert!(w[0] < w[1], "case {case}");
        }
    }
}

#[test]
fn dram_completions_are_causal_and_bandwidth_limited() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x4d7a_0000 + case);
        let mut reqs: Vec<(u64, u64)> = (0..1 + rng.below(99))
            .map(|_| (rng.below(10_000), rng.below(512)))
            .collect();
        let mut ch = DramChannel::new(8, 16, 100, 250, 4);
        reqs.sort_by_key(|&(t, _)| t);
        for &(t, line) in &reqs {
            let done = ch.access(Cycle(t), line);
            // Causality: completion after arrival plus minimum latency.
            assert!(done >= Cycle(t + 100), "case {case}");
        }
        assert_eq!(ch.accesses(), reqs.len() as u64, "case {case}");
        assert!(
            ch.row_hit_rate() >= 0.0 && ch.row_hit_rate() <= 1.0,
            "case {case}"
        );
    }
}

#[test]
fn derived_source_partitions_all_items_exactly_once() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x5de7_0000 + case);
        let items = 1 + rng.below(4999) as u32;
        let ipt = 1 + rng.below(63) as u32;
        let stride = rng.below(64) as u32;
        let src = ThreadSource::Derived {
            origin: ThreadWork {
                items,
                seq_base: 1 << 20,
                rand_seed: 7,
            },
            items_per_thread: ipt,
        };
        let n = src.thread_count();
        let mut total = 0u64;
        let mut next_seq = 1u64 << 20;
        for t in 0..n {
            let w = src.thread(t, stride);
            assert!(w.items <= ipt, "case {case}");
            total += w.items as u64;
            // Sequential streams tile the region contiguously.
            assert_eq!(w.seq_base, next_seq, "case {case}");
            next_seq += ipt as u64 * stride as u64;
        }
        assert_eq!(total, items as u64, "case {case}");
        // One past the end is empty.
        assert_eq!(src.thread(n, stride).items, 0, "case {case}");
    }
}

#[test]
fn explicit_source_is_faithful() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x6e2b_0000 + case);
        let counts: Vec<u32> = (0..1 + rng.below(99)).map(|_| rng.below(100) as u32).collect();
        let threads: Vec<ThreadWork> = counts
            .iter()
            .map(|&c| ThreadWork::with_items(c))
            .collect();
        let src = ThreadSource::Explicit(threads.into());
        assert_eq!(src.thread_count() as usize, counts.len(), "case {case}");
        assert_eq!(
            src.total_items(),
            counts.iter().map(|&c| c as u64).sum::<u64>(),
            "case {case}"
        );
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(src.thread(i as u32, 4).items, c, "case {case}");
        }
    }
}
