//! Crafted end-to-end scenarios exercising the simulator's resource
//! limits, geometry edge cases, and mixed launch decisions.

use std::sync::Arc;

use dynapar_gpu::{
    ChildRequest, DpSpec, GpuConfig, KernelDesc, LaunchController, LaunchDecision, SimReport,
    Simulation, ThreadSource, ThreadWork, WorkClass,
};

fn compute_kernel(
    threads: u32,
    items_per_thread: u32,
    cta_threads: u32,
    regs: u32,
    shmem: u32,
) -> KernelDesc {
    KernelDesc {
        name: "scenario".into(),
        cta_threads,
        regs_per_thread: regs,
        shmem_per_cta: shmem,
        class: Arc::new(WorkClass::compute_only("s", 8)),
        source: ThreadSource::Derived {
            origin: ThreadWork::with_items(threads * items_per_thread),
            items_per_thread,
        },
        dp: None,
    }
}

fn run(cfg: GpuConfig, desc: KernelDesc) -> SimReport {
    let mut sim = Simulation::builder(cfg).build();
    sim.launch_host(desc);
    sim.run().report
}

#[test]
fn giant_cta_of_64_warps_fits_and_runs() {
    // One CTA of 2048 threads consumes a whole SMX.
    let cfg = GpuConfig::kepler_k20m();
    let r = run(cfg, compute_kernel(2048, 4, 2048, 16, 0));
    assert_eq!(r.items_total(), 2048 * 4);
}

#[test]
fn cta_smaller_than_a_warp_still_works() {
    let cfg = GpuConfig::test_small();
    let r = run(cfg, compute_kernel(40, 2, 8, 8, 0));
    assert_eq!(r.items_total(), 80);
}

#[test]
fn register_pressure_limits_residency() {
    // regs 64/thread, CTA 256 -> 16384 regs/CTA -> only 4 fit in a 64K
    // register file even though 8 would fit by thread count.
    let cfg = GpuConfig::kepler_k20m();
    let heavy = run(cfg.clone(), compute_kernel(16 * 256, 64, 256, 64, 0));
    let light = run(cfg, compute_kernel(16 * 256, 64, 256, 8, 0));
    assert_eq!(heavy.items_total(), light.items_total());
    assert!(
        heavy.total_cycles >= light.total_cycles,
        "register-starved run ({}) cannot beat the light one ({})",
        heavy.total_cycles,
        light.total_cycles
    );
    assert!(heavy.occupancy <= light.occupancy + 1e-9);
}

#[test]
fn shared_memory_pressure_limits_residency() {
    // 48KB shmem/SMX; 24KB per CTA -> 2 resident CTAs per SMX.
    let cfg = GpuConfig::kepler_k20m();
    let heavy = run(cfg.clone(), compute_kernel(64 * 128, 32, 128, 8, 24 * 1024));
    let light = run(cfg, compute_kernel(64 * 128, 32, 128, 8, 0));
    assert!(heavy.total_cycles >= light.total_cycles);
}

#[test]
fn single_thread_kernel_terminates() {
    let cfg = GpuConfig::test_small();
    let r = run(cfg, compute_kernel(1, 1, 32, 8, 0));
    assert_eq!(r.items_total(), 1);
    assert!(r.total_cycles > 0);
}

/// A policy that alternates Kernel / Aggregated / Inline decisions,
/// exercising all three launch paths in one run.
struct RoundRobinPolicy {
    i: u32,
}

impl LaunchController for RoundRobinPolicy {
    fn name(&self) -> &str {
        "rr-mixed"
    }
    fn decide(&mut self, _req: &ChildRequest) -> LaunchDecision {
        self.i += 1;
        match self.i % 3 {
            0 => LaunchDecision::Kernel,
            1 => LaunchDecision::Aggregated,
            _ => LaunchDecision::Inline,
        }
    }
}

#[test]
fn mixed_decisions_conserve_work_across_all_three_paths() {
    let threads: Vec<ThreadWork> = (0..256)
        .map(|t| ThreadWork {
            items: 96,
            seq_base: t as u64 * 4096,
            rand_seed: t as u64,
        })
        .collect();
    let desc = KernelDesc {
        name: "mixed".into(),
        cta_threads: 64,
        regs_per_thread: 16,
        shmem_per_cta: 0,
        class: Arc::new(WorkClass::compute_only("mix-p", 8)),
        source: ThreadSource::Explicit(threads.into()),
        dp: Some(Arc::new(DpSpec {
            child_class: Arc::new(WorkClass::compute_only("mix-c", 8)),
            child_cta_threads: 32,
            child_items_per_thread: 1,
            child_regs_per_thread: 8,
            child_shmem_per_cta: 0,
            min_items: 8,
            default_threshold: 8,
            nested: None,
        })),
    };
    let mut sim = Simulation::builder(GpuConfig::test_small())
        .controller(Box::new(RoundRobinPolicy { i: 0 }))
        .build();
    sim.launch_host(desc);
    let r = sim.run().report;
    assert_eq!(r.items_total(), 256 * 96);
    assert!(r.child_kernels_launched > 0, "Kernel path used");
    assert!(r.aggregated_launches > 0, "Aggregated path used");
    assert!(r.inlined_requests > 0, "Inline path used");
    assert_eq!(
        r.launch_requests,
        r.child_kernels_launched + r.aggregated_launches + r.inlined_requests
    );
}

#[test]
fn zero_item_threads_cost_nothing_extra() {
    // Threads with zero items should not generate rounds.
    let mut threads = vec![ThreadWork::with_items(0); 512];
    threads[0].items = 10;
    let desc = KernelDesc {
        name: "sparse".into(),
        cta_threads: 64,
        regs_per_thread: 8,
        shmem_per_cta: 0,
        class: Arc::new(WorkClass::compute_only("sp", 8)),
        source: ThreadSource::Explicit(threads.into()),
        dp: None,
    };
    let r = run(GpuConfig::test_small(), desc);
    assert_eq!(r.items_total(), 10);
}

#[test]
fn memory_heavy_class_is_slower_than_compute_only() {
    let mk = |mem: bool| {
        let class = if mem {
            WorkClass {
                label: "mem",
                compute_per_item: 8,
                init_cycles: 0,
                seq_bytes_per_item: 8,
                rand_refs_per_item: 2,
                rand_region_base: 0x8000_0000,
                rand_region_bytes: 1 << 24,
                writes_per_item: 1,
            }
        } else {
            WorkClass::compute_only("cpu", 8)
        };
        KernelDesc {
            name: "m".into(),
            cta_threads: 64,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            class: Arc::new(class),
            source: ThreadSource::Derived {
                origin: ThreadWork {
                    items: 4096,
                    seq_base: 0x1000_0000,
                    rand_seed: 3,
                },
                items_per_thread: 16,
            },
            dp: None,
        }
    };
    let cpu = run(GpuConfig::test_small(), mk(false));
    let mem = run(GpuConfig::test_small(), mk(true));
    assert!(mem.total_cycles > cpu.total_cycles);
    assert!(mem.mem.l1_accesses > 0);
    assert_eq!(cpu.mem.l1_accesses, 0);
}

#[test]
fn more_items_never_run_faster() {
    let cfg = GpuConfig::test_small();
    let mut last = 0u64;
    for scale in [1u32, 2, 4, 8] {
        let r = run(cfg.clone(), compute_kernel(256, 16 * scale, 64, 8, 0));
        assert!(
            r.total_cycles >= last,
            "items x{scale} ran faster than x{}",
            scale / 2
        );
        last = r.total_cycles;
    }
}

#[test]
fn huge_fanout_of_tiny_kernels_drains() {
    // Every thread launches: hundreds of 8-item kernels through a tiny
    // 4-HWQ config — a stress of the HWQ/turnaround path.
    struct LaunchAll;
    impl LaunchController for LaunchAll {
        fn name(&self) -> &str {
            "la"
        }
        fn decide(&mut self, _r: &ChildRequest) -> LaunchDecision {
            LaunchDecision::Kernel
        }
    }
    let threads: Vec<ThreadWork> = (0..512)
        .map(|t| ThreadWork {
            items: 8,
            seq_base: t as u64 * 512,
            rand_seed: t as u64,
        })
        .collect();
    let desc = KernelDesc {
        name: "fanout".into(),
        cta_threads: 64,
        regs_per_thread: 8,
        shmem_per_cta: 0,
        class: Arc::new(WorkClass::compute_only("f", 4)),
        source: ThreadSource::Explicit(threads.into()),
        dp: Some(Arc::new(DpSpec {
            child_class: Arc::new(WorkClass::compute_only("fc", 4)),
            child_cta_threads: 32,
            child_items_per_thread: 1,
            child_regs_per_thread: 8,
            child_shmem_per_cta: 0,
            min_items: 1,
            default_threshold: 0,
            nested: None,
        })),
    };
    let mut sim = Simulation::builder(GpuConfig::test_small())
        .controller(Box::new(LaunchAll))
        .build();
    sim.launch_host(desc);
    let r = sim.run().report;
    assert_eq!(r.child_kernels_launched, 512);
    assert_eq!(r.items_child, 512 * 8);
    assert_eq!(r.items_inline, 0);
}
