//! Property tests for the GPU simulator's data structures, checked
//! against reference models.

use std::collections::HashSet;

use proptest::prelude::*;

use dynapar_engine::Cycle;
use dynapar_gpu::mem::{coalesce_lines, Cache, DramChannel};
use dynapar_gpu::{ThreadSource, ThreadWork};

/// Reference LRU cache using a vector of (set, line) with explicit
/// recency ordering.
struct RefLru {
    sets: usize,
    ways: usize,
    // Per set: most-recent-last list of lines.
    content: Vec<Vec<u64>>,
}

impl RefLru {
    fn new(sets: usize, ways: usize) -> Self {
        RefLru {
            sets,
            ways,
            content: vec![Vec::new(); sets],
        }
    }
    fn probe_fill(&mut self, line: u64) -> bool {
        let set = (line % self.sets as u64) as usize;
        let list = &mut self.content[set];
        if let Some(pos) = list.iter().position(|&l| l == line) {
            list.remove(pos);
            list.push(line);
            true
        } else {
            if list.len() == self.ways {
                list.remove(0);
            }
            list.push(line);
            false
        }
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_lru(
        lines in prop::collection::vec(0u64..256, 1..500),
        sets in 1usize..8,
        ways in 1usize..5,
    ) {
        let mut dut = Cache::new(sets, ways);
        let mut reference = RefLru::new(sets, ways);
        for &l in &lines {
            prop_assert_eq!(dut.probe_fill(l), reference.probe_fill(l), "line {}", l);
        }
    }

    #[test]
    fn cache_hit_rate_bounds(lines in prop::collection::vec(0u64..64, 1..300)) {
        let mut c = Cache::new(4, 4);
        for &l in &lines {
            c.probe_fill(l);
        }
        prop_assert!(c.hit_rate() >= 0.0 && c.hit_rate() <= 1.0);
        prop_assert_eq!(c.accesses(), lines.len() as u64);
    }

    #[test]
    fn coalescer_matches_hashset(addrs in prop::collection::vec(0u64..1_000_000, 0..128)) {
        let mut v = addrs.clone();
        coalesce_lines(&mut v, 128);
        let expect: HashSet<u64> = addrs.iter().map(|a| a >> 7).collect();
        prop_assert_eq!(v.len(), expect.len());
        for &l in &v {
            prop_assert!(expect.contains(&l));
        }
        // Sorted, deduped.
        for w in v.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn dram_completions_are_causal_and_bandwidth_limited(
        reqs in prop::collection::vec((0u64..10_000, 0u64..512), 1..100)
    ) {
        let mut ch = DramChannel::new(8, 16, 100, 250, 4);
        let mut reqs = reqs.clone();
        reqs.sort_by_key(|&(t, _)| t);
        let mut last_start_plus = 0u64;
        for &(t, line) in &reqs {
            let done = ch.access(Cycle(t), line);
            // Causality: completion after arrival plus minimum latency.
            prop_assert!(done >= Cycle(t + 100));
            // Bandwidth: starts are spaced by the service interval.
            let start = done.as_u64() - 100 <= t + 4 + last_start_plus; // loose
            let _ = start;
            last_start_plus = last_start_plus.max(done.as_u64());
        }
        prop_assert_eq!(ch.accesses(), reqs.len() as u64);
        prop_assert!(ch.row_hit_rate() >= 0.0 && ch.row_hit_rate() <= 1.0);
    }

    #[test]
    fn derived_source_partitions_all_items_exactly_once(
        items in 1u32..5000,
        ipt in 1u32..64,
        stride in 0u32..64,
    ) {
        let src = ThreadSource::Derived {
            origin: ThreadWork {
                items,
                seq_base: 1 << 20,
                rand_seed: 7,
            },
            items_per_thread: ipt,
        };
        let n = src.thread_count();
        let mut total = 0u64;
        let mut next_seq = 1u64 << 20;
        for t in 0..n {
            let w = src.thread(t, stride);
            prop_assert!(w.items <= ipt);
            total += w.items as u64;
            // Sequential streams tile the region contiguously.
            prop_assert_eq!(w.seq_base, next_seq);
            next_seq += ipt as u64 * stride as u64;
        }
        prop_assert_eq!(total, items as u64);
        // One past the end is empty.
        prop_assert_eq!(src.thread(n, stride).items, 0);
    }

    #[test]
    fn explicit_source_is_faithful(counts in prop::collection::vec(0u32..100, 1..100)) {
        let threads: Vec<ThreadWork> = counts
            .iter()
            .map(|&c| ThreadWork::with_items(c))
            .collect();
        let src = ThreadSource::Explicit(std::sync::Arc::new(threads));
        prop_assert_eq!(src.thread_count() as usize, counts.len());
        prop_assert_eq!(
            src.total_items(),
            counts.iter().map(|&c| c as u64).sum::<u64>()
        );
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(src.thread(i as u32, 4).items, c);
        }
    }
}
