//! End-to-end smoke tests of the `dynapar` binary itself.

use std::process::Command;

fn dynapar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dynapar"))
}

#[test]
fn list_names_the_suite() {
    let out = dynapar().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    for name in ["AMR", "BFS-graph500", "SA-thaliana", "MM-large"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = dynapar().output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("USAGE"));
    assert!(text.contains("spawn"));
}

#[test]
fn run_executes_a_tiny_benchmark() {
    let out = dynapar()
        .args([
            "run", "--bench", "GC-citation", "--policy", "spawn", "--scale", "tiny",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("cycles"), "no cycle count in:\n{text}");
    assert!(text.contains("spawn"));
}

#[test]
fn unknown_benchmark_fails_cleanly() {
    let out = dynapar()
        .args(["run", "--bench", "NOPE", "--policy", "flat"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("unknown benchmark"));
}

#[test]
fn bad_arguments_print_usage() {
    let out = dynapar().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("USAGE"));
}

#[test]
fn spec_subcommand_runs_a_file() {
    let dir = std::env::temp_dir().join("dynapar-cli-smoke");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("smoke.spec");
    let items: Vec<String> = (0..256)
        .map(|i| if i % 32 == 0 { "300" } else { "2" }.to_string())
        .collect();
    std::fs::write(
        &path,
        format!("name: smoke\nthreshold: 64\nitems: {}\n", items.join(" ")),
    )
    .expect("write spec");
    let out = dynapar()
        .args([
            "spec",
            "--file",
            path.to_str().expect("utf8 path"),
            "--policy",
            "baseline",
            "--scale",
            "tiny",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("smoke"));
    assert!(text.contains("vs flat"));
}
