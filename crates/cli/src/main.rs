//! `dynapar` — command-line front end to the SPAWN reproduction.
//!
//! ```sh
//! dynapar run --bench SA-thaliana --policy spawn --scale small
//! dynapar compare --bench AMR --scale small
//! dynapar sweep --bench BFS-graph500 --points 6
//! dynapar suite --policy spawn --scale small
//! dynapar serve --listen 127.0.0.1:7070
//! dynapar submit --addr 127.0.0.1:7070 --bench AMR --policy spawn
//! ```
//!
//! Single-run execution goes through the same typed
//! [`JobRequest`](dynapar_server::JobRequest) API the daemon serves, so
//! `dynapar run --emit-json` and a server `submit` with equal configs
//! write byte-identical artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;

use std::process::ExitCode;

use args::{Cli, Command, USAGE};
use dynapar_core::PolicySpec;
use dynapar_engine::par::par_map;
use dynapar_gpu::{GpuConfig, MetricsLevel, SimReport};
use dynapar_server::{
    Client, GpuPreset, JobRequest, Observation, Server, ServerConfig, SweepRequest, WorkloadRef,
    PROTOCOL_VERSION,
};
use dynapar_workloads::{suite, Benchmark};

fn summarize(label: &str, r: &SimReport, flat_cycles: Option<u64>) {
    let speedup = flat_cycles
        .map(|f| format!(" ({:.2}x vs flat)", r.speedup_over(f)))
        .unwrap_or_default();
    println!("{label:<14} {:>10} cycles{speedup}", r.total_cycles);
    println!(
        "{:<14} kernels={} agg-ctas={} offload={:.1}% occupancy={:.1}% L2={:.1}% queue-lat={:.0}",
        "",
        r.child_kernels_launched,
        r.aggregated_ctas,
        r.offload_fraction() * 100.0,
        r.occupancy * 100.0,
        r.mem.l2_hit_rate() * 100.0,
        r.avg_child_queue_latency,
    );
}

fn get_bench(name: &str, cli: &Cli) -> Result<Benchmark, String> {
    suite::by_name(name, cli.scale, cli.seed)
        .ok_or_else(|| format!("unknown benchmark {name:?}; try `dynapar list`"))
}

/// Builds the workload reference from the mutually-exclusive
/// `--bench`/`--spec` pair (exclusivity was enforced at parse time).
fn workload_ref(
    bench: &Option<String>,
    spec: &Option<String>,
    cli: &Cli,
) -> Result<WorkloadRef, String> {
    match (bench, spec) {
        (Some(name), None) => Ok(WorkloadRef::Suite {
            bench: name.clone(),
            scale: cli.scale,
        }),
        (None, Some(path)) => Ok(WorkloadRef::Spec {
            text: std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
        }),
        _ => unreachable!("parse() enforces exactly one of --bench/--spec"),
    }
}

fn exec(cli: Cli) -> Result<(), String> {
    let cfg = GpuConfig::kepler_k20m();
    match &cli.command {
        Command::Help => print!("{USAGE}"),
        Command::List => {
            for n in suite::NAMES {
                println!("{n}");
            }
            println!("SA-elegans (extra input for the Fig. 21 comparison)");
        }
        Command::Config => {
            println!("{cfg:#?}");
        }
        Command::Spec { file, policy } => {
            let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let spec = dynapar_workloads::BenchmarkSpec::parse(&text).map_err(|e| e.to_string())?;
            let b = spec.build(cli.seed);
            println!(
                "# spec {}: {} threads, {} items",
                b.name(),
                b.threads(),
                b.total_items()
            );
            let flat = b.run_flat(&cfg);
            summarize("flat", &flat, None);
            let ctrl = policy.controller(&cfg, b.default_threshold(), MetricsLevel::Off);
            let r = b.run(&cfg, ctrl);
            summarize(&policy.label(), &r, Some(flat.total_cycles));
        }
        Command::Levels { input, policy } => {
            use dynapar_workloads::apps::{bfs::levels, GraphInput};
            let gi = match input.as_str() {
                "citation" => GraphInput::Citation,
                "graph500" => GraphInput::Graph500,
                other => return Err(format!("unknown input {other:?} (citation|graph500)")),
            };
            let flat = levels::run(gi, cli.scale, cli.seed, &cfg, Box::new(dynapar_gpu::InlineAll));
            summarize("flat", &flat, None);
            // Build a throwaway benchmark handle for policy construction.
            let b = suite::by_name("BFS-graph500", cli.scale, cli.seed).expect("known");
            let ctrl = policy.controller(&cfg, b.default_threshold(), MetricsLevel::Off);
            let r = levels::run(gi, cli.scale, cli.seed, &cfg, ctrl);
            summarize(&policy.label(), &r, Some(flat.total_cycles));
        }
        Command::Run {
            bench,
            spec,
            policy,
            trace,
            timeline_csv,
            kernels_csv,
            emit_json,
            emit_timeline,
            metrics,
            snapshot_at,
            snapshot_out,
            resume,
        } => {
            let job = JobRequest {
                workload: workload_ref(bench, spec, &cli)?,
                policy: policy.clone(),
                seed: cli.seed,
                metrics: *metrics,
                gpu: GpuPreset::KeplerK20m,
                sim_jobs: cli.sim_jobs,
                sim_window: cli.sim_window,
            };
            // Built once here for the header line (and the friendly
            // unknown-benchmark error before any simulation starts);
            // the run itself rebuilds deterministically inside `job`.
            let b = job.workload.build(cli.seed).map_err(|e| {
                if e.starts_with("unknown benchmark") {
                    format!("{e}; try `dynapar list`")
                } else {
                    e
                }
            })?;
            println!(
                "# {} at {} scale: {} threads, {} items",
                b.name(),
                cli.scale.name(),
                b.threads(),
                b.total_items()
            );
            let out = if let Some(path) = resume {
                let snap =
                    std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
                println!("# resuming from snapshot {path} ({} bytes)", snap.len());
                job.run_forked(&snap, Observation::default())?
            } else if let Some(cycle) = snapshot_at {
                job.run_armed(*cycle, Observation::default())?
            } else {
                job.run(*trace)?
            };
            if let Some(path) = snapshot_out {
                let snap = out.snapshot.as_ref().ok_or_else(|| {
                    format!(
                        "run finished before cycle {} — no snapshot captured",
                        snapshot_at.expect("--snapshot-out implies --snapshot-at")
                    )
                })?;
                std::fs::write(path, snap).map_err(|e| format!("writing {path}: {e}"))?;
                println!("# snapshot written to {path} ({} bytes)", snap.len());
            }
            let r = &out.report;
            summarize(&policy.label(), r, None);
            if let Some(tr) = &out.trace {
                println!("# trace: {} events ({} dropped)", tr.events().len(), tr.dropped());
                for ev in tr.events().iter().take(40) {
                    println!("  {ev}");
                }
                if tr.events().len() > 40 {
                    println!("  ... ({} more)", tr.events().len() - 40);
                }
            }
            if let Some(path) = timeline_csv {
                std::fs::write(path, r.timeline_csv())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("# timeline written to {path}");
            }
            if let Some(path) = kernels_csv {
                std::fs::write(path, r.kernels_csv())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("# kernel table written to {path}");
            }
            if let Some(path) = emit_json {
                let artifact = out
                    .artifact
                    .as_ref()
                    .ok_or("--emit-json needs --metrics summary|full|timeseries")?;
                std::fs::write(path, format!("{artifact}\n"))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("# artifact written to {path}");
            }
            if let Some(path) = emit_timeline {
                let tr = out
                    .trace
                    .as_ref()
                    .expect("--emit-timeline implies tracing");
                let doc = dynapar_gpu::perfetto::timeline_json(tr);
                std::fs::write(path, format!("{}\n", doc.pretty()))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("# perfetto timeline written to {path} (open at ui.perfetto.dev)");
            }
        }
        Command::SnapDiff { a, b } => {
            let bytes_a = std::fs::read(a).map_err(|e| format!("reading {a}: {e}"))?;
            let bytes_b = std::fs::read(b).map_err(|e| format!("reading {b}: {e}"))?;
            print!("{}", dynapar_gpu::diff_snapshots(&bytes_a, &bytes_b));
        }
        Command::CheckArtifact { file } => {
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let artifact = dynapar_gpu::RunArtifact::parse(&text).map_err(|e| e.to_string())?;
            println!(
                "ok: {} level={:?} ccqs_samples={}",
                dynapar_gpu::ARTIFACT_SCHEMA,
                artifact.level(),
                artifact.ccqs_samples().len()
            );
        }
        Command::CheckTimeline { file } => {
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let json = dynapar_gpu::Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
            let events = json
                .get("traceEvents")
                .and_then(dynapar_gpu::Json::as_array)
                .ok_or("timeline has no `traceEvents` array")?;
            if events.is_empty() {
                return Err("timeline has an empty `traceEvents` array".into());
            }
            let spans = events
                .iter()
                .filter(|e| e.get("ph").and_then(dynapar_gpu::Json::as_str) == Some("X"))
                .count();
            println!("ok: {} trace events ({spans} spans)", events.len());
        }
        Command::Compare { bench } => {
            let b = get_bench(bench, &cli)?;
            let flat = b.run_flat(&cfg);
            summarize("flat", &flat, None);
            let policies = vec![
                PolicySpec::Baseline,
                PolicySpec::Spawn,
                PolicySpec::Dtbl,
                PolicySpec::Always,
                PolicySpec::Adaptive,
                PolicySpec::FreeLaunch,
            ];
            let runs = par_map(policies, cli.jobs, |p| {
                let ctrl = p.controller(&cfg, b.default_threshold(), MetricsLevel::Off);
                let r = b.run(&cfg, ctrl);
                (p, r)
            });
            for (p, r) in &runs {
                summarize(&p.label(), r, Some(flat.total_cycles));
            }
        }
        Command::Sweep {
            bench,
            spec,
            points,
            fork_warmup,
        } => {
            let workload = workload_ref(bench, spec, &cli)?;
            let b = workload.build(cli.seed).map_err(|e| {
                if e.starts_with("unknown benchmark") {
                    format!("{e}; try `dynapar list`")
                } else {
                    e
                }
            })?;
            let flat = b.run_flat(&cfg);
            let fracs: Vec<f64> = (1..=*points)
                .map(|i| i as f64 / (*points as f64 + 1.0))
                .collect();
            let mut grid = b.threshold_grid(&fracs);
            grid.push(b.default_threshold());
            grid.sort_unstable();
            grid.dedup();
            // The sweep expands through the same SweepRequest the
            // daemon's `sweep` request uses, so the per-point configs
            // (and memo keys) are identical on both paths.
            let sweep = SweepRequest {
                base: JobRequest {
                    workload,
                    policy: PolicySpec::Flat,
                    seed: cli.seed,
                    metrics: MetricsLevel::Off,
                    gpu: GpuPreset::KeplerK20m,
                    sim_jobs: cli.sim_jobs,
                    sim_window: cli.sim_window,
                },
                policies: grid.iter().map(|&t| PolicySpec::Threshold(t)).collect(),
                fork_warmup: *fork_warmup,
            };
            let jobs: Vec<(u32, JobRequest)> =
                grid.iter().copied().zip(sweep.expand()).collect();
            // With --fork-warmup, simulate the shared policy-independent
            // ramp once, then branch every remaining point from the
            // snapshot. Only a pristine ramp (no launch decisions yet)
            // is policy-independent; otherwise fall back to cold runs.
            let warm_snapshot = match fork_warmup {
                Some(cycle) if jobs.len() > 1 => {
                    let first = jobs[0].1.clone();
                    let out = first.run_armed(*cycle, Observation::default())?;
                    let snap = out.snapshot.filter(|s| {
                        dynapar_gpu::parse_snapshot(s)
                            .ok()
                            .and_then(|(job, _)| {
                                job.get("pristine").and_then(dynapar_gpu::Json::as_bool)
                            })
                            == Some(true)
                    });
                    match &snap {
                        Some(s) => println!(
                            "# warm-start: ramped to cycle {cycle} once ({} bytes), forking {} branches",
                            s.len(),
                            jobs.len() - 1
                        ),
                        None => println!(
                            "# warm-start: cycle {cycle} is past the policy-independent ramp; running cold"
                        ),
                    }
                    snap.map(|s| (s, out.report))
                }
                _ => None,
            };
            let runs = if let Some((snap, first_report)) = warm_snapshot {
                let rest: Vec<(u32, JobRequest)> = jobs[1..].to_vec();
                let mut runs = vec![(jobs[0].0, first_report)];
                runs.extend(par_map(rest, cli.jobs, |(t, job)| {
                    let out = job
                        .run_forked(&snap, Observation::default())
                        .or_else(|_| job.run(None))
                        .expect("benchmark validated above");
                    (t, out.report)
                }));
                runs
            } else {
                par_map(jobs, cli.jobs, |(t, job)| {
                    let out = job.run(None).expect("benchmark validated above");
                    (t, out.report)
                })
            };
            println!("{:>10} {:>9} {:>8} {:>9}", "THRESHOLD", "offload%", "speedup", "kernels");
            for (t, r) in &runs {
                println!(
                    "{:>10} {:>8.1}% {:>7.2}x {:>9}",
                    t,
                    r.offload_fraction() * 100.0,
                    r.speedup_over(flat.total_cycles),
                    r.child_kernels_launched
                );
            }
            let best = runs
                .iter()
                .min_by_key(|(_, r)| r.total_cycles)
                .expect("non-empty grid");
            println!(
                "best: THRESHOLD={} -> {:.2}x",
                best.0,
                best.1.speedup_over(flat.total_cycles)
            );
        }
        Command::Suite { policy } => {
            println!("{:<15} {:>9} {:>9}", "benchmark", policy.label(), "kernels");
            let mut speedups = Vec::new();
            let runs = par_map(suite::all(cli.scale, cli.seed), cli.jobs, |b| {
                let flat = b.run_flat(&cfg);
                let ctrl = policy.controller(&cfg, b.default_threshold(), MetricsLevel::Off);
                let r = b.run(&cfg, ctrl);
                (b.name().to_string(), flat, r)
            });
            for (name, flat, r) in &runs {
                let s = r.speedup_over(flat.total_cycles);
                speedups.push(s);
                println!(
                    "{:<15} {:>8.2}x {:>9}",
                    name,
                    s,
                    r.child_kernels_launched
                );
            }
            println!(
                "{:<15} {:>8.2}x",
                "GEOMEAN",
                suite::geomean(&speedups)
            );
        }
        Command::Serve {
            listen,
            workers,
            port_file,
            store,
            store_max_bytes,
            log_file,
            log_level,
            trace_out,
        } => {
            let server = Server::bind(&ServerConfig {
                addr: listen.clone(),
                workers: *workers,
                store: store.clone().map(std::path::PathBuf::from),
                store_max_bytes: *store_max_bytes,
                log_file: log_file.clone().map(std::path::PathBuf::from),
                log_level: *log_level,
                trace_out: trace_out.clone().map(std::path::PathBuf::from),
            })
            .map_err(|e| format!("bind {listen}: {e}"))?;
            if let Some(path) = log_file {
                println!("# structured log ({log_level}+) at {path}");
            }
            if let Some(path) = trace_out {
                println!("# Perfetto trace will be written to {path} on exit");
            }
            if let Some(dir) = store {
                match store_max_bytes {
                    Some(cap) => println!("# memo cache persisted under {dir} (cap {cap} bytes)"),
                    None => println!("# memo cache persisted under {dir}"),
                }
            }
            let addr = server.local_addr().map_err(|e| format!("local_addr: {e}"))?;
            if let Some(path) = port_file {
                std::fs::write(path, format!("{}\n", addr.port()))
                    .map_err(|e| format!("writing {path}: {e}"))?;
            }
            println!(
                "# dynapar-server v{PROTOCOL_VERSION} listening on {addr} ({workers} worker{})",
                if *workers == 1 { "" } else { "s" }
            );
            server.run().map_err(|e| format!("serve: {e}"))?;
            println!("# dynapar-server stopped");
        }
        Command::Submit {
            addr,
            bench,
            spec,
            policy,
            metrics,
            emit_json,
        } => {
            let job = JobRequest {
                workload: workload_ref(bench, spec, &cli)?,
                policy: policy.clone(),
                seed: cli.seed,
                metrics: *metrics,
                gpu: GpuPreset::KeplerK20m,
                sim_jobs: cli.sim_jobs,
                sim_window: cli.sim_window,
            };
            let mut client =
                Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
            let res = client.run(&job)?;
            println!("# job {} hash {} cached={}", res.id, res.hash, res.cached);
            if let Some(cycles) = res
                .artifact
                .get("report")
                .and_then(|r| r.get("total_cycles"))
                .and_then(dynapar_gpu::Json::as_u64)
            {
                println!("{:<14} {cycles:>10} cycles", policy.label());
            }
            if let Some(path) = emit_json {
                std::fs::write(path, format!("{}\n", res.artifact))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("# artifact written to {path}");
            }
        }
        Command::ServerStats { addr } => {
            let mut client =
                Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
            println!("{}", client.stats()?.pretty());
        }
        Command::ServerMetrics { addr } => {
            let mut client =
                Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
            println!("{}", client.metrics()?.pretty());
        }
        Command::ServerHealth { addr } => {
            let mut client =
                Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
            println!("{}", client.health()?.pretty());
        }
        Command::ServerShutdown { addr } => {
            let mut client =
                Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
            client.shutdown()?;
            println!("# daemon at {addr} stopping");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cli) => match exec(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
