//! `dynapar` — command-line front end to the SPAWN reproduction.
//!
//! ```sh
//! dynapar run --bench SA-thaliana --policy spawn --scale small
//! dynapar compare --bench AMR --scale small
//! dynapar sweep --bench BFS-graph500 --points 6
//! dynapar suite --policy spawn --scale small
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;

use std::process::ExitCode;

use args::{Cli, Command, PolicyArg, USAGE};
use dynapar_core::{
    offline, AdaptiveThreshold, AlwaysLaunch, BaselineDp, Dtbl, FixedThreshold, FreeLaunch,
    SpawnPolicy,
};
use dynapar_engine::par::par_map;
use dynapar_gpu::{GpuConfig, LaunchController, QueueBackend, SimBackend, SimReport};
use dynapar_workloads::{suite, Benchmark};

fn controller(policy: &PolicyArg, cfg: &GpuConfig, bench: &Benchmark) -> Box<dyn LaunchController> {
    match policy {
        PolicyArg::Flat => Box::new(dynapar_gpu::InlineAll),
        PolicyArg::Baseline => Box::new(BaselineDp::new()),
        PolicyArg::Spawn => Box::new(SpawnPolicy::from_config(cfg)),
        PolicyArg::Dtbl => Box::new(Dtbl::new()),
        PolicyArg::Always => Box::new(AlwaysLaunch::new()),
        PolicyArg::Threshold(t) => Box::new(FixedThreshold::new(*t)),
        PolicyArg::Adaptive => Box::new(AdaptiveThreshold::new(
            bench.default_threshold().max(1),
            1 << 14,
        )),
        PolicyArg::FreeLaunch => Box::new(FreeLaunch::new()),
    }
}

fn summarize(label: &str, r: &SimReport, flat_cycles: Option<u64>) {
    let speedup = flat_cycles
        .map(|f| format!(" ({:.2}x vs flat)", r.speedup_over(f)))
        .unwrap_or_default();
    println!("{label:<14} {:>10} cycles{speedup}", r.total_cycles);
    println!(
        "{:<14} kernels={} agg-ctas={} offload={:.1}% occupancy={:.1}% L2={:.1}% queue-lat={:.0}",
        "",
        r.child_kernels_launched,
        r.aggregated_ctas,
        r.offload_fraction() * 100.0,
        r.occupancy * 100.0,
        r.mem.l2_hit_rate() * 100.0,
        r.avg_child_queue_latency,
    );
}

fn get_bench(name: &str, cli: &Cli) -> Result<Benchmark, String> {
    suite::by_name(name, cli.scale, cli.seed)
        .ok_or_else(|| format!("unknown benchmark {name:?}; try `dynapar list`"))
}

fn exec(cli: Cli) -> Result<(), String> {
    let cfg = GpuConfig::kepler_k20m();
    match &cli.command {
        Command::Help => print!("{USAGE}"),
        Command::List => {
            for n in suite::NAMES {
                println!("{n}");
            }
            println!("SA-elegans (extra input for the Fig. 21 comparison)");
        }
        Command::Config => {
            println!("{cfg:#?}");
        }
        Command::Spec { file, policy } => {
            let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let spec = dynapar_workloads::BenchmarkSpec::parse(&text).map_err(|e| e.to_string())?;
            let b = spec.build(cli.seed);
            println!(
                "# spec {}: {} threads, {} items",
                b.name(),
                b.threads(),
                b.total_items()
            );
            let flat = b.run_flat(&cfg);
            summarize("flat", &flat, None);
            let r = b.run(&cfg, controller(policy, &cfg, &b));
            summarize(&policy.label(), &r, Some(flat.total_cycles));
        }
        Command::Levels { input, policy } => {
            use dynapar_workloads::apps::{bfs::levels, GraphInput};
            let gi = match input.as_str() {
                "citation" => GraphInput::Citation,
                "graph500" => GraphInput::Graph500,
                other => return Err(format!("unknown input {other:?} (citation|graph500)")),
            };
            let flat = levels::run(gi, cli.scale, cli.seed, &cfg, Box::new(dynapar_gpu::InlineAll));
            summarize("flat", &flat, None);
            // Build a throwaway benchmark handle for policy construction.
            let b = suite::by_name("BFS-graph500", cli.scale, cli.seed).expect("known");
            let r = levels::run(gi, cli.scale, cli.seed, &cfg, controller(policy, &cfg, &b));
            summarize(&policy.label(), &r, Some(flat.total_cycles));
        }
        Command::Run {
            bench,
            policy,
            trace,
            timeline_csv,
            kernels_csv,
            emit_json,
            emit_timeline,
            metrics,
        } => {
            let b = get_bench(bench, &cli)?;
            println!(
                "# {} at {:?} scale: {} threads, {} items",
                b.name(),
                cli.scale,
                b.threads(),
                b.total_items()
            );
            // An artifact-emitting SPAWN run logs its Eq. 1 predictions so
            // the artifact's ccqs_samples section has estimate-vs-actual
            // pairs to report.
            let ctrl = if *metrics != dynapar_gpu::MetricsLevel::Off
                && *policy == PolicyArg::Spawn
            {
                Box::new(SpawnPolicy::from_config(&cfg).with_prediction_log())
            } else {
                controller(policy, &cfg, &b)
            };
            let backend = match cli.sim_jobs {
                Some(n) => SimBackend::Par(n),
                None => SimBackend::Seq,
            };
            let out = b.run_full_with(
                &cfg,
                ctrl,
                *trace,
                *metrics,
                QueueBackend::default(),
                backend,
            );
            let r = &out.report;
            summarize(&policy.label(), r, None);
            if let Some(tr) = &out.trace {
                println!("# trace: {} events ({} dropped)", tr.events().len(), tr.dropped());
                for ev in tr.events().iter().take(40) {
                    println!("  {ev}");
                }
                if tr.events().len() > 40 {
                    println!("  ... ({} more)", tr.events().len() - 40);
                }
            }
            if let Some(path) = timeline_csv {
                std::fs::write(path, r.timeline_csv())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("# timeline written to {path}");
            }
            if let Some(path) = kernels_csv {
                std::fs::write(path, r.kernels_csv())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("# kernel table written to {path}");
            }
            if let Some(path) = emit_json {
                let artifact = out
                    .artifact
                    .as_ref()
                    .ok_or("--emit-json needs --metrics summary|full|timeseries")?;
                std::fs::write(path, format!("{artifact}\n"))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("# artifact written to {path}");
            }
            if let Some(path) = emit_timeline {
                let tr = out
                    .trace
                    .as_ref()
                    .expect("--emit-timeline implies tracing");
                let doc = dynapar_gpu::perfetto::timeline_json(tr);
                std::fs::write(path, format!("{}\n", doc.pretty()))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("# perfetto timeline written to {path} (open at ui.perfetto.dev)");
            }
        }
        Command::CheckArtifact { file } => {
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let artifact = dynapar_gpu::RunArtifact::parse(&text).map_err(|e| e.to_string())?;
            println!(
                "ok: {} level={:?} ccqs_samples={}",
                dynapar_gpu::ARTIFACT_SCHEMA,
                artifact.level(),
                artifact.ccqs_samples().len()
            );
        }
        Command::CheckTimeline { file } => {
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let json = dynapar_gpu::Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
            let events = json
                .get("traceEvents")
                .and_then(dynapar_gpu::Json::as_array)
                .ok_or("timeline has no `traceEvents` array")?;
            if events.is_empty() {
                return Err("timeline has an empty `traceEvents` array".into());
            }
            let spans = events
                .iter()
                .filter(|e| e.get("ph").and_then(dynapar_gpu::Json::as_str) == Some("X"))
                .count();
            println!("ok: {} trace events ({spans} spans)", events.len());
        }
        Command::Compare { bench } => {
            let b = get_bench(bench, &cli)?;
            let flat = b.run_flat(&cfg);
            summarize("flat", &flat, None);
            let policies = vec![
                PolicyArg::Baseline,
                PolicyArg::Spawn,
                PolicyArg::Dtbl,
                PolicyArg::Always,
                PolicyArg::Adaptive,
                PolicyArg::FreeLaunch,
            ];
            let runs = par_map(policies, cli.jobs, |p| {
                let r = b.run(&cfg, controller(&p, &cfg, &b));
                (p, r)
            });
            for (p, r) in &runs {
                summarize(&p.label(), r, Some(flat.total_cycles));
            }
        }
        Command::Sweep { bench, points } => {
            let b = get_bench(bench, &cli)?;
            let flat = b.run_flat(&cfg);
            let fracs: Vec<f64> = (1..=*points)
                .map(|i| i as f64 / (*points as f64 + 1.0))
                .collect();
            let mut grid = b.threshold_grid(&fracs);
            grid.push(b.default_threshold());
            grid.sort_unstable();
            grid.dedup();
            let sweep = offline::sweep_par(&grid, cli.jobs, |policy| b.run(&cfg, policy));
            println!("{:>10} {:>9} {:>8} {:>9}", "THRESHOLD", "offload%", "speedup", "kernels");
            for p in sweep.points() {
                println!(
                    "{:>10} {:>8.1}% {:>7.2}x {:>9}",
                    p.threshold,
                    p.offload_fraction() * 100.0,
                    p.report.speedup_over(flat.total_cycles),
                    p.report.child_kernels_launched
                );
            }
            let best = sweep.best();
            println!(
                "best: THRESHOLD={} -> {:.2}x",
                best.threshold,
                best.report.speedup_over(flat.total_cycles)
            );
        }
        Command::Suite { policy } => {
            println!("{:<15} {:>9} {:>9}", "benchmark", policy.label(), "kernels");
            let mut speedups = Vec::new();
            let runs = par_map(suite::all(cli.scale, cli.seed), cli.jobs, |b| {
                let flat = b.run_flat(&cfg);
                let r = b.run(&cfg, controller(policy, &cfg, &b));
                (b.name().to_string(), flat, r)
            });
            for (name, flat, r) in &runs {
                let s = r.speedup_over(flat.total_cycles);
                speedups.push(s);
                println!(
                    "{:<15} {:>8.2}x {:>9}",
                    name,
                    s,
                    r.child_kernels_launched
                );
            }
            println!(
                "{:<15} {:>8.2}x",
                "GEOMEAN",
                suite::geomean(&speedups)
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cli) => match exec(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
