//! Hand-rolled argument parsing for the `dynapar` CLI (kept
//! dependency-free on purpose — the workspace's sanctioned crates don't
//! include an argument parser).
//!
//! Policy strings parse through [`PolicySpec`] — the same typed spec
//! the daemon's request API uses — so `--policy spawn` here and
//! `"policy":"spawn"` on the wire are one code path.

use dynapar_core::PolicySpec;
use dynapar_engine::log::Level;
use dynapar_gpu::{MetricsLevel, SimWindow};
use dynapar_workloads::Scale;

/// The CLI's subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one benchmark (or spec file) under one policy.
    Run {
        /// Benchmark name (`--bench`); exclusive with `spec`.
        bench: Option<String>,
        /// Spec-file path (`--spec`); exclusive with `bench`.
        spec: Option<String>,
        /// Policy to run it under.
        policy: PolicySpec,
        /// Trace-capacity request, if tracing.
        trace: Option<usize>,
        /// Write the timeline as CSV to this path.
        timeline_csv: Option<String>,
        /// Write the per-kernel table as CSV to this path.
        kernels_csv: Option<String>,
        /// Write the run artifact (JSON) to this path.
        emit_json: Option<String>,
        /// Write a Perfetto/Chrome `trace_event` timeline to this path.
        emit_timeline: Option<String>,
        /// Metrics collection level for the run artifact.
        metrics: MetricsLevel,
        /// Capture a snapshot once simulated time passes this cycle.
        snapshot_at: Option<u64>,
        /// Write the captured snapshot to this path.
        snapshot_out: Option<String>,
        /// Resume from a snapshot file instead of starting cold.
        resume: Option<String>,
    },
    /// Level-synchronous BFS (multi-kernel) under one policy vs flat.
    Levels {
        /// Graph input: citation | graph500.
        input: String,
        /// Policy to evaluate.
        policy: PolicySpec,
    },
    /// Threshold sweep on one benchmark.
    Sweep {
        /// Benchmark name; exclusive with `spec`.
        bench: Option<String>,
        /// Spec-file path; exclusive with `bench`.
        spec: Option<String>,
        /// Number of sweep points.
        points: usize,
        /// Warm-start fork point: simulate the shared ramp once up to
        /// this cycle, then fork every sweep point from the snapshot.
        fork_warmup: Option<u64>,
    },
    /// All policies side by side on one benchmark.
    Compare {
        /// Benchmark name.
        bench: String,
    },
    /// Whole Table I suite under one policy vs flat.
    Suite {
        /// Policy to evaluate.
        policy: PolicySpec,
    },
    /// Run a benchmark described by a plain-text spec file.
    Spec {
        /// Path to the spec file.
        file: String,
        /// Policy to run it under.
        policy: PolicySpec,
    },
    /// Parse and validate a run-artifact JSON file.
    CheckArtifact {
        /// Path to the artifact file.
        file: String,
    },
    /// Parse and sanity-check a Perfetto timeline JSON file.
    CheckTimeline {
        /// Path to the timeline file.
        file: String,
    },
    /// Start the simulation daemon.
    Serve {
        /// Bind address (port 0 = ephemeral).
        listen: String,
        /// Worker threads executing jobs.
        workers: usize,
        /// Write the bound port (one line) to this path once listening.
        port_file: Option<String>,
        /// Artifact store directory: persists the memo cache across
        /// daemon restarts.
        store: Option<String>,
        /// Byte budget for the artifact store: least-recently-used
        /// entries are evicted once the persisted total exceeds it.
        store_max_bytes: Option<u64>,
        /// Structured-log sink: one JSON object per line with daemon
        /// lifecycle, request, and job events.
        log_file: Option<String>,
        /// Minimum level written to `--log-file` (default `info`).
        log_level: Level,
        /// Perfetto trace output: job-lifecycle spans collected while
        /// serving, written once when the daemon exits.
        trace_out: Option<String>,
    },
    /// Compare two snapshot files field by field.
    SnapDiff {
        /// First snapshot path.
        a: String,
        /// Second snapshot path.
        b: String,
    },
    /// Submit a job to a running daemon and wait for its artifact.
    Submit {
        /// Daemon address (`HOST:PORT`).
        addr: String,
        /// Benchmark name; exclusive with `spec`.
        bench: Option<String>,
        /// Spec-file path (shipped to the daemon inline); exclusive
        /// with `bench`.
        spec: Option<String>,
        /// Policy to run under.
        policy: PolicySpec,
        /// Metrics collection level.
        metrics: MetricsLevel,
        /// Write the returned artifact (JSON) to this path.
        emit_json: Option<String>,
    },
    /// Print a running daemon's lifetime counters.
    ServerStats {
        /// Daemon address (`HOST:PORT`).
        addr: String,
    },
    /// Print a running daemon's latency histograms and gauges.
    ServerMetrics {
        /// Daemon address (`HOST:PORT`).
        addr: String,
    },
    /// Probe a running daemon's liveness (uptime, workers, queue).
    ServerHealth {
        /// Daemon address (`HOST:PORT`).
        addr: String,
    },
    /// Ask a running daemon to exit.
    ServerShutdown {
        /// Daemon address (`HOST:PORT`).
        addr: String,
    },
    /// Print the simulated-GPU configuration.
    Config,
    /// List available benchmarks.
    List,
    /// Print usage.
    Help,
}

/// Fully parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
    /// Input scale (default paper).
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
    /// Worker threads for multi-simulation subcommands (sweep,
    /// compare, suite). Orthogonal to `sim_jobs`.
    pub jobs: usize,
    /// Worker threads *inside* each simulation (the deterministic
    /// parallel backend); `None` runs the sequential backend. Results
    /// are byte-identical either way.
    pub sim_jobs: Option<usize>,
    /// Lookahead window policy for the parallel backend (`--sim-window
    /// auto|1|N`, default auto). Wall-clock only: results are
    /// byte-identical at every width.
    pub sim_window: SimWindow,
}

/// Usage text.
pub const USAGE: &str = "\
dynapar — GPU dynamic-parallelism simulator (SPAWN, HPCA 2017)

USAGE:
  dynapar run (--bench <NAME> | --spec <PATH>) --policy <POLICY>
              [--trace N] [--timeline-csv F] [--kernels-csv F]
              [--metrics off|summary|full|timeseries] [--emit-json F]
              [--emit-timeline F] [--snapshot-at C --snapshot-out F]
              [--resume F] [options]
  dynapar levels --input citation|graph500 --policy <POLICY> [options]
  dynapar sweep (--bench <NAME> | --spec <PATH>) [--points N]
                [--fork-warmup C] [options]
  dynapar compare --bench <NAME> [options]
  dynapar suite --policy <POLICY> [options]
  dynapar spec --file <PATH> --policy <POLICY> [options]
  dynapar check-artifact --file <PATH>
  dynapar check-timeline --file <PATH>
  dynapar serve [--listen ADDR] [--workers N] [--port-file F] [--store DIR]
                [--store-max-bytes N] [--log-file F [--log-level L]]
                [--trace-out F]
  dynapar submit --addr HOST:PORT (--bench <NAME> | --spec <PATH>)
                 --policy <POLICY> [--metrics L] [--emit-json F] [options]
  dynapar snap-diff A.snap B.snap
  dynapar server-stats --addr HOST:PORT
  dynapar server-metrics --addr HOST:PORT
  dynapar server-health --addr HOST:PORT
  dynapar server-shutdown --addr HOST:PORT
  dynapar config
  dynapar list

POLICIES:  flat | baseline | spawn | dtbl | always | adaptive | freelaunch | threshold:N
OPTIONS:   --scale tiny|small|paper (default paper) · --seed N
           --jobs N (worker threads for sweep/compare/suite;
           default: DYNAPAR_JOBS or the CPU count)
           --sim-jobs N (parallel backend inside each simulation;
           default: sequential. Results are byte-identical)
           --sim-window auto|1|N (parallel lookahead window width;
           default auto. Wall-clock only — results are byte-identical)
BENCHES:   the 13 Table I names, e.g. BFS-graph500, SA-thaliana (see `list`)
ARTIFACTS: --emit-json writes the deterministic run-artifact JSON
           (implies --metrics full unless --metrics is given);
           `check-artifact` re-parses and validates such a file.
           --metrics timeseries adds the windowed-telemetry section
           (dynapar-timeseries/1) to the artifact.
TIMELINE:  --emit-timeline writes a Perfetto/Chrome trace_event JSON
           (implies --trace 100000 unless --trace is given); open it
           at ui.perfetto.dev. `check-timeline` validates such a file
SNAPSHOT:  `run --snapshot-at C --snapshot-out F` runs to completion and
           also captures the deterministic state at cycle C;
           `run --resume F` warm-starts from it — the resumed run's
           artifact is byte-identical to an uninterrupted run.
           `sweep --fork-warmup C` simulates the shared ramp once and
           forks every sweep point from the cycle-C snapshot.
SERVER:    `serve` starts the line-JSON v1 daemon (docs/SERVER.md);
           `submit` runs a job on it and waits — identical configs are
           answered from the daemon's memo cache without re-simulating,
           and artifacts are byte-identical to a local `run --emit-json`.
           `serve --store DIR` persists completed artifacts so the memo
           cache survives daemon restarts; --store-max-bytes N caps the
           store, evicting least-recently-used entries.
           `serve --log-file F` writes structured JSON logs (one object
           per line; --log-level debug|info|warn|error, default info);
           `serve --trace-out F` writes a Perfetto job timeline at exit.
           `server-metrics` prints latency histograms + gauges (JSON
           with an embedded Prometheus text rendering); `server-health`
           is a cheap liveness probe. See docs/OBSERVABILITY.md.
           `snap-diff A B` compares two snapshot files: differing header
           fields, then the first divergent byte of the binary state
";

fn take_value<'a>(
    args: &'a [String],
    i: &mut usize,
    flag: &str,
) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} expects a value"))
}

/// Parses the full argument vector (excluding the program name).
///
/// # Errors
///
/// Returns a message suitable for printing alongside [`USAGE`].
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut scale = Scale::Paper;
    let mut seed = dynapar_workloads::suite::DEFAULT_SEED;
    let mut jobs = dynapar_engine::par::default_jobs();
    let mut sim_jobs: Option<usize> = None;
    let mut sim_window = SimWindow::default();
    let mut bench: Option<String> = None;
    let mut spec: Option<String> = None;
    let mut policy: Option<PolicySpec> = None;
    let mut trace: Option<usize> = None;
    let mut points = 8usize;
    let mut timeline_csv: Option<String> = None;
    let mut kernels_csv: Option<String> = None;
    let mut input: Option<String> = None;
    let mut file: Option<String> = None;
    let mut emit_json: Option<String> = None;
    let mut emit_timeline: Option<String> = None;
    let mut metrics: Option<MetricsLevel> = None;
    let mut listen = "127.0.0.1:0".to_string();
    let mut workers = 1usize;
    let mut port_file: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut snapshot_at: Option<u64> = None;
    let mut snapshot_out: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut fork_warmup: Option<u64> = None;
    let mut store: Option<String> = None;
    let mut store_max_bytes: Option<u64> = None;
    let mut log_file: Option<String> = None;
    let mut log_level: Option<Level> = None;
    let mut trace_out: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let sub = args.first().map(String::as_str).unwrap_or("help");

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v = take_value(args, &mut i, "--scale")?;
                scale = Scale::parse(v).ok_or_else(|| format!("unknown scale {v:?}"))?;
            }
            "--seed" => {
                seed = take_value(args, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--jobs" => {
                jobs = take_value(args, &mut i, "--jobs")?
                    .parse()
                    .map_err(|_| "--jobs expects an integer".to_string())?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--sim-jobs" => {
                let n: usize = take_value(args, &mut i, "--sim-jobs")?
                    .parse()
                    .map_err(|_| "--sim-jobs expects an integer".to_string())?;
                if n == 0 {
                    return Err("--sim-jobs must be at least 1".to_string());
                }
                sim_jobs = Some(n);
            }
            "--sim-window" => {
                sim_window = take_value(args, &mut i, "--sim-window")?.parse()?;
            }
            "--bench" => bench = Some(take_value(args, &mut i, "--bench")?.to_string()),
            "--spec" => spec = Some(take_value(args, &mut i, "--spec")?.to_string()),
            "--policy" => {
                policy = Some(PolicySpec::parse(take_value(args, &mut i, "--policy")?)?)
            }
            "--trace" => {
                trace = Some(
                    take_value(args, &mut i, "--trace")?
                        .parse()
                        .map_err(|_| "--trace expects a capacity".to_string())?,
                );
            }
            "--timeline-csv" => {
                timeline_csv = Some(take_value(args, &mut i, "--timeline-csv")?.to_string());
            }
            "--kernels-csv" => {
                kernels_csv = Some(take_value(args, &mut i, "--kernels-csv")?.to_string());
            }
            "--input" => input = Some(take_value(args, &mut i, "--input")?.to_string()),
            "--emit-json" => {
                emit_json = Some(take_value(args, &mut i, "--emit-json")?.to_string());
            }
            "--emit-timeline" => {
                emit_timeline = Some(take_value(args, &mut i, "--emit-timeline")?.to_string());
            }
            "--metrics" => {
                let v = take_value(args, &mut i, "--metrics")?;
                metrics = Some(MetricsLevel::parse(v).ok_or_else(|| {
                    format!(
                        "--metrics expects {}, got {v:?}",
                        MetricsLevel::VALID_VALUES
                    )
                })?);
            }
            "--file" => file = Some(take_value(args, &mut i, "--file")?.to_string()),
            "--points" => {
                points = take_value(args, &mut i, "--points")?
                    .parse()
                    .map_err(|_| "--points expects an integer".to_string())?;
            }
            "--listen" => listen = take_value(args, &mut i, "--listen")?.to_string(),
            "--workers" => {
                workers = take_value(args, &mut i, "--workers")?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_string())?;
                if workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--port-file" => {
                port_file = Some(take_value(args, &mut i, "--port-file")?.to_string());
            }
            "--addr" => addr = Some(take_value(args, &mut i, "--addr")?.to_string()),
            "--snapshot-at" => {
                snapshot_at = Some(
                    take_value(args, &mut i, "--snapshot-at")?
                        .parse()
                        .map_err(|_| "--snapshot-at expects a cycle number".to_string())?,
                );
            }
            "--snapshot-out" => {
                snapshot_out = Some(take_value(args, &mut i, "--snapshot-out")?.to_string());
            }
            "--resume" => resume = Some(take_value(args, &mut i, "--resume")?.to_string()),
            "--fork-warmup" => {
                fork_warmup = Some(
                    take_value(args, &mut i, "--fork-warmup")?
                        .parse()
                        .map_err(|_| "--fork-warmup expects a cycle number".to_string())?,
                );
            }
            "--store" => store = Some(take_value(args, &mut i, "--store")?.to_string()),
            "--store-max-bytes" => {
                let n: u64 = take_value(args, &mut i, "--store-max-bytes")?
                    .parse()
                    .map_err(|_| "--store-max-bytes expects a byte count".to_string())?;
                if n == 0 {
                    return Err("--store-max-bytes must be at least 1".to_string());
                }
                store_max_bytes = Some(n);
            }
            "--log-file" => {
                log_file = Some(take_value(args, &mut i, "--log-file")?.to_string());
            }
            "--log-level" => {
                log_level = Some(Level::parse(take_value(args, &mut i, "--log-level")?)?);
            }
            "--trace-out" => {
                trace_out = Some(take_value(args, &mut i, "--trace-out")?.to_string());
            }
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    let need_bench = || bench.clone().ok_or_else(|| "--bench is required".to_string());
    let need_addr = || addr.clone().ok_or_else(|| "--addr is required".to_string());
    let need_workload = |bench: &Option<String>, spec: &Option<String>| match (bench, spec) {
        (Some(_), Some(_)) => Err("pass --bench or --spec, not both".to_string()),
        (None, None) => Err("--bench or --spec is required".to_string()),
        _ => Ok(()),
    };
    let command = match sub {
        "run" => {
            need_workload(&bench, &spec)?;
            // Snapshots and the decision trace are mutually exclusive
            // (the trace is unsupported across a capture/resume), and
            // arming without a destination would silently discard the
            // snapshot.
            if snapshot_at.is_some() != snapshot_out.is_some() {
                return Err("--snapshot-at and --snapshot-out go together".to_string());
            }
            if resume.is_some() && snapshot_at.is_some() {
                return Err("--resume cannot also arm a snapshot (--snapshot-at)".to_string());
            }
            if (snapshot_at.is_some() || resume.is_some())
                && (trace.is_some() || emit_timeline.is_some())
            {
                return Err("snapshots are incompatible with --trace/--emit-timeline".to_string());
            }
            Command::Run {
                bench,
                spec,
                policy: policy.ok_or("--policy is required")?,
                timeline_csv,
                kernels_csv,
                // --emit-json without an explicit level means "collect
                // everything": an artifact request should never silently
                // produce no artifact.
                metrics: metrics.unwrap_or(if emit_json.is_some() {
                    MetricsLevel::Full
                } else {
                    MetricsLevel::Off
                }),
                emit_json,
                // --emit-timeline without --trace implies a default trace
                // capacity: a timeline request should never come out empty.
                trace: trace.or(if emit_timeline.is_some() {
                    Some(100_000)
                } else {
                    None
                }),
                emit_timeline,
                snapshot_at,
                snapshot_out,
                resume,
            }
        }
        "levels" => Command::Levels {
            input: input.ok_or("--input is required (citation|graph500)")?,
            policy: policy.ok_or("--policy is required")?,
        },
        "sweep" => {
            need_workload(&bench, &spec)?;
            Command::Sweep {
                bench,
                spec,
                points,
                fork_warmup,
            }
        }
        "compare" => Command::Compare {
            bench: need_bench()?,
        },
        "suite" => Command::Suite {
            policy: policy.ok_or("--policy is required")?,
        },
        "spec" => Command::Spec {
            file: file.ok_or("--file is required")?,
            policy: policy.ok_or("--policy is required")?,
        },
        "check-artifact" => Command::CheckArtifact {
            file: file.ok_or("--file is required")?,
        },
        "check-timeline" => Command::CheckTimeline {
            file: file.ok_or("--file is required")?,
        },
        "serve" => {
            if store_max_bytes.is_some() && store.is_none() {
                return Err("--store-max-bytes needs --store".to_string());
            }
            if log_level.is_some() && log_file.is_none() {
                return Err("--log-level needs --log-file".to_string());
            }
            Command::Serve {
                listen,
                workers,
                port_file,
                store,
                store_max_bytes,
                log_file,
                log_level: log_level.unwrap_or(Level::Info),
                trace_out,
            }
        }
        "snap-diff" => {
            let [a, b] = positional.as_slice() else {
                return Err("snap-diff expects exactly two snapshot paths".to_string());
            };
            Command::SnapDiff {
                a: a.clone(),
                b: b.clone(),
            }
        }
        "submit" => {
            need_workload(&bench, &spec)?;
            Command::Submit {
                addr: need_addr()?,
                bench,
                spec,
                policy: policy.ok_or("--policy is required")?,
                metrics: metrics.unwrap_or(MetricsLevel::Full),
                emit_json,
            }
        }
        "server-stats" => Command::ServerStats { addr: need_addr()? },
        "server-metrics" => Command::ServerMetrics { addr: need_addr()? },
        "server-health" => Command::ServerHealth { addr: need_addr()? },
        "server-shutdown" => Command::ServerShutdown { addr: need_addr()? },
        "config" => Command::Config,
        "list" => Command::List,
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(format!("unknown command {other:?}")),
    };
    if !matches!(command, Command::SnapDiff { .. }) {
        if let Some(p) = positional.first() {
            return Err(format!("unexpected argument {p:?}"));
        }
    }
    Ok(Cli {
        command,
        scale,
        seed,
        jobs,
        sim_jobs,
        sim_window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run() {
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "spawn", "--scale", "tiny", "--seed", "9",
        ]))
        .expect("valid");
        assert_eq!(
            cli.command,
            Command::Run {
                bench: Some("AMR".into()),
                spec: None,
                policy: PolicySpec::Spawn,
                trace: None,
                timeline_csv: None,
                kernels_csv: None,
                emit_json: None,
                emit_timeline: None,
                metrics: MetricsLevel::Off,
                snapshot_at: None,
                snapshot_out: None,
                resume: None,
            }
        );
        assert_eq!(cli.scale, Scale::Tiny);
        assert_eq!(cli.seed, 9);
    }

    #[test]
    fn parses_threshold_policy() {
        assert_eq!(
            PolicySpec::parse("threshold:42"),
            Ok(PolicySpec::Threshold(42))
        );
        assert!(PolicySpec::parse("threshold:x").is_err());
        assert!(PolicySpec::parse("nope").is_err());
        assert_eq!(PolicySpec::Threshold(7).label(), "threshold:7");
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse(&v(&["run", "--bench", "AMR"])).is_err());
        assert!(parse(&v(&["run", "--policy", "spawn"])).is_err());
        assert!(parse(&v(&["suite"])).is_err());
    }

    #[test]
    fn unknown_inputs_error() {
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["run", "--wat"])).is_err());
        assert!(parse(&v(&["run", "--scale", "huge"])).is_err());
    }

    #[test]
    fn jobs_flag() {
        let cli = parse(&v(&["suite", "--policy", "spawn", "--jobs", "4"])).expect("valid");
        assert_eq!(cli.jobs, 4);
        assert!(parse(&v(&["suite", "--policy", "spawn", "--jobs", "0"])).is_err());
        assert!(parse(&v(&["suite", "--policy", "spawn", "--jobs", "many"])).is_err());
        let cli = parse(&v(&["list"])).expect("valid");
        assert!(cli.jobs >= 1);
    }

    #[test]
    fn sim_jobs_flag() {
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "spawn", "--sim-jobs", "4",
        ]))
        .expect("valid");
        assert_eq!(cli.sim_jobs, Some(4));
        let cli = parse(&v(&["run", "--bench", "AMR", "--policy", "spawn"])).expect("valid");
        assert_eq!(cli.sim_jobs, None, "default is the sequential backend");
        assert!(parse(&v(&["run", "--bench", "AMR", "--policy", "spawn", "--sim-jobs", "0"]))
            .is_err());
        assert!(parse(&v(&["run", "--bench", "AMR", "--policy", "spawn", "--sim-jobs", "x"]))
            .is_err());
    }

    #[test]
    fn sim_window_flag() {
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "spawn", "--sim-window", "8",
        ]))
        .expect("valid");
        assert_eq!(cli.sim_window, SimWindow::Fixed(8));
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "spawn", "--sim-window", "auto",
        ]))
        .expect("valid");
        assert_eq!(cli.sim_window, SimWindow::Auto);
        let cli = parse(&v(&["run", "--bench", "AMR", "--policy", "spawn"])).expect("valid");
        assert_eq!(cli.sim_window, SimWindow::Auto, "auto is the default");
        for bad in ["0", "x", ""] {
            assert!(
                parse(&v(&["run", "--bench", "AMR", "--policy", "spawn", "--sim-window", bad]))
                    .is_err(),
                "--sim-window {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn serve_store_max_bytes_flag() {
        let cli = parse(&v(&[
            "serve", "--store", "/tmp/s", "--store-max-bytes", "4096",
        ]))
        .expect("valid");
        match cli.command {
            Command::Serve { store, store_max_bytes, .. } => {
                assert_eq!(store.as_deref(), Some("/tmp/s"));
                assert_eq!(store_max_bytes, Some(4096));
            }
            other => panic!("wrong command {other:?}"),
        }
        let cli = parse(&v(&["serve", "--store", "/tmp/s"])).expect("valid");
        match cli.command {
            Command::Serve { store_max_bytes, .. } => assert_eq!(store_max_bytes, None),
            other => panic!("wrong command {other:?}"),
        }
        // The cap only means something with a store to cap.
        assert!(parse(&v(&["serve", "--store-max-bytes", "4096"])).is_err());
        assert!(parse(&v(&["serve", "--store", "/tmp/s", "--store-max-bytes", "0"])).is_err());
        assert!(parse(&v(&["serve", "--store", "/tmp/s", "--store-max-bytes", "x"])).is_err());
    }

    #[test]
    fn snap_diff_takes_exactly_two_paths() {
        let cli = parse(&v(&["snap-diff", "a.snap", "b.snap"])).expect("valid");
        assert_eq!(
            cli.command,
            Command::SnapDiff {
                a: "a.snap".into(),
                b: "b.snap".into(),
            }
        );
        assert!(parse(&v(&["snap-diff", "a.snap"])).is_err());
        assert!(parse(&v(&["snap-diff", "a", "b", "c"])).is_err());
        // Positional operands are snap-diff's alone: other commands
        // still reject strays.
        assert!(parse(&v(&["list", "stray"])).is_err());
    }

    #[test]
    fn run_spec_flag_is_exclusive_with_bench() {
        let cli = parse(&v(&["run", "--spec", "x.spec", "--policy", "spawn"])).expect("valid");
        match cli.command {
            Command::Run { bench, spec, .. } => {
                assert_eq!(bench, None);
                assert_eq!(spec.as_deref(), Some("x.spec"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&v(&[
            "run", "--bench", "AMR", "--spec", "x.spec", "--policy", "spawn",
        ]))
        .unwrap_err();
        assert!(err.contains("not both"), "{err}");
        assert!(parse(&v(&["run", "--policy", "spawn"])).is_err());
    }

    #[test]
    fn bare_invocation_is_help() {
        let cli = parse(&[]).expect("help");
        assert_eq!(cli.command, Command::Help);
    }

    #[test]
    fn sweep_and_compare() {
        let cli = parse(&v(&["sweep", "--bench", "Mandel", "--points", "5"])).expect("valid");
        assert_eq!(
            cli.command,
            Command::Sweep {
                bench: Some("Mandel".into()),
                spec: None,
                points: 5,
                fork_warmup: None,
            }
        );
        parse(&v(&["sweep", "--spec", "ramp.spec", "--fork-warmup", "2000"]))
            .expect("spec sweeps are valid");
        parse(&v(&["sweep", "--points", "3"])).expect_err("workload is required");
        let cli = parse(&v(&["compare", "--bench", "Mandel"])).expect("valid");
        assert_eq!(
            cli.command,
            Command::Compare {
                bench: "Mandel".into()
            }
        );
    }

    #[test]
    fn trace_flag() {
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "flat", "--trace", "1000",
        ]))
        .expect("valid");
        match cli.command {
            Command::Run { trace, .. } => assert_eq!(trace, Some(1000)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn levels_subcommand() {
        let cli = parse(&v(&["levels", "--input", "graph500", "--policy", "spawn"])).expect("valid");
        assert_eq!(
            cli.command,
            Command::Levels {
                input: "graph500".into(),
                policy: PolicySpec::Spawn
            }
        );
        assert!(parse(&v(&["levels", "--policy", "spawn"])).is_err());
    }

    #[test]
    fn spec_subcommand() {
        let cli = parse(&v(&["spec", "--file", "x.spec", "--policy", "baseline"])).expect("valid");
        assert_eq!(
            cli.command,
            Command::Spec {
                file: "x.spec".into(),
                policy: PolicySpec::Baseline
            }
        );
        assert!(parse(&v(&["spec", "--policy", "baseline"])).is_err());
    }

    #[test]
    fn artifact_flags() {
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "flat", "--emit-json", "out.json",
        ]))
        .expect("valid");
        match cli.command {
            Command::Run {
                emit_json, metrics, ..
            } => {
                assert_eq!(emit_json.as_deref(), Some("out.json"));
                assert_eq!(metrics, MetricsLevel::Full, "--emit-json implies full");
            }
            other => panic!("unexpected {other:?}"),
        }
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "flat", "--metrics", "summary",
            "--emit-json", "out.json",
        ]))
        .expect("valid");
        match cli.command {
            Command::Run { metrics, .. } => assert_eq!(metrics, MetricsLevel::Summary),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&v(&["run", "--bench", "AMR", "--policy", "flat", "--metrics", "loud"]))
            .is_err());
    }

    #[test]
    fn metrics_errors_list_valid_values_and_accept_any_case() {
        let err = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "flat", "--metrics", "loud",
        ]))
        .unwrap_err();
        assert!(
            err.contains(MetricsLevel::VALID_VALUES),
            "error must list the valid values: {err}"
        );
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "flat", "--metrics", "TimeSeries",
        ]))
        .expect("case-insensitive");
        match cli.command {
            Command::Run { metrics, .. } => assert_eq!(metrics, MetricsLevel::Timeseries),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn timeline_flags() {
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "spawn", "--emit-timeline", "t.json",
        ]))
        .expect("valid");
        match cli.command {
            Command::Run {
                emit_timeline,
                trace,
                ..
            } => {
                assert_eq!(emit_timeline.as_deref(), Some("t.json"));
                assert_eq!(trace, Some(100_000), "--emit-timeline implies tracing");
            }
            other => panic!("unexpected {other:?}"),
        }
        // An explicit --trace wins over the implied default.
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "spawn", "--emit-timeline", "t.json",
            "--trace", "64",
        ]))
        .expect("valid");
        match cli.command {
            Command::Run { trace, .. } => assert_eq!(trace, Some(64)),
            other => panic!("unexpected {other:?}"),
        }
        let cli = parse(&v(&["check-timeline", "--file", "t.json"])).expect("valid");
        assert_eq!(
            cli.command,
            Command::CheckTimeline {
                file: "t.json".into()
            }
        );
        assert!(parse(&v(&["check-timeline"])).is_err());
    }

    #[test]
    fn check_artifact_subcommand() {
        let cli = parse(&v(&["check-artifact", "--file", "a.json"])).expect("valid");
        assert_eq!(
            cli.command,
            Command::CheckArtifact {
                file: "a.json".into()
            }
        );
        assert!(parse(&v(&["check-artifact"])).is_err());
    }

    #[test]
    fn csv_flags() {
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "flat", "--timeline-csv", "t.csv",
            "--kernels-csv", "k.csv",
        ]))
        .expect("valid");
        match cli.command {
            Command::Run {
                timeline_csv,
                kernels_csv,
                ..
            } => {
                assert_eq!(timeline_csv.as_deref(), Some("t.csv"));
                assert_eq!(kernels_csv.as_deref(), Some("k.csv"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_subcommand() {
        let cli = parse(&v(&["serve"])).expect("valid");
        assert_eq!(
            cli.command,
            Command::Serve {
                listen: "127.0.0.1:0".into(),
                workers: 1,
                port_file: None,
                store: None,
                store_max_bytes: None,
                log_file: None,
                log_level: Level::Info,
                trace_out: None,
            }
        );
        let cli = parse(&v(&[
            "serve", "--listen", "127.0.0.1:7070", "--workers", "4", "--port-file", "p.txt",
            "--store", "cache/",
        ]))
        .expect("valid");
        assert_eq!(
            cli.command,
            Command::Serve {
                listen: "127.0.0.1:7070".into(),
                workers: 4,
                port_file: Some("p.txt".into()),
                store: Some("cache/".into()),
                store_max_bytes: None,
                log_file: None,
                log_level: Level::Info,
                trace_out: None,
            }
        );
        assert!(parse(&v(&["serve", "--workers", "0"])).is_err());
    }

    #[test]
    fn serve_observability_flags() {
        let cli = parse(&v(&[
            "serve", "--log-file", "d.log", "--log-level", "debug", "--trace-out", "t.json",
        ]))
        .expect("valid");
        match cli.command {
            Command::Serve {
                log_file,
                log_level,
                trace_out,
                ..
            } => {
                assert_eq!(log_file.as_deref(), Some("d.log"));
                assert_eq!(log_level, Level::Debug);
                assert_eq!(trace_out.as_deref(), Some("t.json"));
            }
            other => panic!("wrong command {other:?}"),
        }
        // The level only means something with a file to filter into.
        assert!(parse(&v(&["serve", "--log-level", "debug"])).is_err());
        assert!(parse(&v(&["serve", "--log-file", "d.log", "--log-level", "loud"])).is_err());
    }

    #[test]
    fn server_metrics_and_health_subcommands() {
        let cli = parse(&v(&["server-metrics", "--addr", "h:1"])).expect("valid");
        assert_eq!(cli.command, Command::ServerMetrics { addr: "h:1".into() });
        let cli = parse(&v(&["server-health", "--addr", "h:1"])).expect("valid");
        assert_eq!(cli.command, Command::ServerHealth { addr: "h:1".into() });
        assert!(parse(&v(&["server-metrics"])).is_err());
        assert!(parse(&v(&["server-health"])).is_err());
    }

    #[test]
    fn snapshot_flags() {
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "spawn", "--snapshot-at", "5000",
            "--snapshot-out", "s.snap",
        ]))
        .expect("valid");
        match cli.command {
            Command::Run {
                snapshot_at,
                snapshot_out,
                resume,
                ..
            } => {
                assert_eq!(snapshot_at, Some(5000));
                assert_eq!(snapshot_out.as_deref(), Some("s.snap"));
                assert_eq!(resume, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cli = parse(&v(&[
            "run", "--bench", "AMR", "--policy", "spawn", "--resume", "s.snap",
        ]))
        .expect("valid");
        match cli.command {
            Command::Run { resume, .. } => assert_eq!(resume.as_deref(), Some("s.snap")),
            other => panic!("unexpected {other:?}"),
        }
        // Invalid combinations are rejected with a reason.
        for bad in [
            &["run", "--bench", "AMR", "--policy", "spawn", "--snapshot-at", "5"][..],
            &["run", "--bench", "AMR", "--policy", "spawn", "--snapshot-out", "f"][..],
            &[
                "run", "--bench", "AMR", "--policy", "spawn", "--resume", "f",
                "--snapshot-at", "5", "--snapshot-out", "g",
            ][..],
            &[
                "run", "--bench", "AMR", "--policy", "spawn", "--resume", "f", "--trace", "10",
            ][..],
        ] {
            assert!(parse(&v(bad)).is_err(), "{bad:?} should be rejected");
        }
        // Sweep grows the fork point.
        let cli = parse(&v(&[
            "sweep", "--bench", "Mandel", "--fork-warmup", "40000",
        ]))
        .expect("valid");
        match cli.command {
            Command::Sweep { fork_warmup, .. } => assert_eq!(fork_warmup, Some(40000)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn submit_subcommand() {
        let cli = parse(&v(&[
            "submit", "--addr", "127.0.0.1:7070", "--bench", "AMR", "--policy", "spawn",
        ]))
        .expect("valid");
        assert_eq!(
            cli.command,
            Command::Submit {
                addr: "127.0.0.1:7070".into(),
                bench: Some("AMR".into()),
                spec: None,
                policy: PolicySpec::Spawn,
                metrics: MetricsLevel::Full,
                emit_json: None,
            }
        );
        assert!(parse(&v(&["submit", "--bench", "AMR", "--policy", "spawn"])).is_err());
        assert!(parse(&v(&["submit", "--addr", "x", "--policy", "spawn"])).is_err());
        let cli = parse(&v(&["server-stats", "--addr", "h:1"])).expect("valid");
        assert_eq!(cli.command, Command::ServerStats { addr: "h:1".into() });
        let cli = parse(&v(&["server-shutdown", "--addr", "h:1"])).expect("valid");
        assert_eq!(cli.command, Command::ServerShutdown { addr: "h:1".into() });
    }
}
