//! # dynapar-core
//!
//! **SPAWN** — controlled kernel launch for dynamic parallelism in GPUs —
//! plus every launch policy the paper evaluates against. This crate is the
//! reproduction of the paper's primary contribution (HPCA 2017, Tang et
//! al.); the simulator it plugs into lives in `dynapar-gpu` and the
//! benchmark suite in `dynapar-workloads`.
//!
//! ## The policies
//!
//! | Policy | Paper role |
//! |---|---|
//! | [`SpawnPolicy`] | the contribution: CCQS-fed cost model (Algorithm 1) |
//! | [`BaselineDp`] | unmodified DP program with the app's own `THRESHOLD` |
//! | [`FixedThreshold`] + [`offline::sweep`] | static characterization (Fig. 5) and Offline-Search |
//! | [`AlwaysLaunch`] | threshold-0 extreme for sweeps |
//! | [`Dtbl`] | Dynamic Thread Block Launch (ISCA'15), the §V-D comparison |
//! | [`FreeLaunch`] | Free Launch (MICRO'15), the related-work launch-elimination transform |
//! | [`InlineAll`] (re-exported from `dynapar-gpu`) | the flat, non-DP program |
//!
//! ## How SPAWN works
//!
//! The [`Ccqs`] monitors four metrics (`n`, `t_cta`, `n_con`, `t_warp`,
//! §IV-B); at each device-launch site [`SpawnPolicy`] compares the
//! estimated child completion time (launch overhead + queuing + service,
//! Eq. 1) against the parent-side serial loop (Eq. 2), launching only when
//! the child wins and the queue bound admits its CTAs.
//!
//! # Examples
//!
//! Running one program under SPAWN:
//!
//! ```
//! use std::sync::Arc;
//! use dynapar_core::SpawnPolicy;
//! use dynapar_gpu::{
//!     DpSpec, GpuConfig, KernelDesc, Simulation, ThreadSource, ThreadWork, WorkClass,
//! };
//!
//! let cfg = GpuConfig::test_small();
//! let policy = SpawnPolicy::from_config(&cfg);
//! let mut sim = Simulation::builder(cfg).controller(Box::new(policy)).build();
//! let threads: Vec<ThreadWork> = (0..256)
//!     .map(|t| ThreadWork {
//!         items: if t % 32 == 0 { 400 } else { 2 },
//!         seq_base: t as u64 * 4096,
//!         rand_seed: t as u64,
//!     })
//!     .collect();
//! sim.launch_host(KernelDesc {
//!     name: "spawn-demo".into(),
//!     cta_threads: 128,
//!     regs_per_thread: 24,
//!     shmem_per_cta: 0,
//!     class: Arc::new(WorkClass::compute_only("parent", 20)),
//!     source: ThreadSource::Explicit(threads.into()),
//!     dp: Some(Arc::new(DpSpec {
//!         child_class: Arc::new(WorkClass::compute_only("child", 20)),
//!         child_cta_threads: 64,
//!         child_items_per_thread: 1,
//!         child_regs_per_thread: 16,
//!         child_shmem_per_cta: 0,
//!         min_items: 32,
//!         default_threshold: 64,
//!         nested: None,
//!     })),
//! });
//! let report = sim.run().report;
//! assert_eq!(report.controller, "SPAWN");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
pub mod analysis;
mod ccqs;
mod dtbl;
mod free_launch;
pub mod offline;
mod policies;
pub mod policy;
mod spawn;

pub use adaptive::AdaptiveThreshold;
pub use analysis::LaunchAnalysis;
pub use ccqs::Ccqs;
pub use dtbl::Dtbl;
pub use free_launch::FreeLaunch;
pub use offline::{sweep, sweep_par, SweepPoint, SweepResult};
pub use policies::{AlwaysLaunch, BaselineDp, FixedThreshold};
pub use policy::PolicySpec;
pub use spawn::{SpawnPolicy, SpawnStats};

// Re-export the flat policy so downstream users get the full policy set
// from one crate.
pub use dynapar_gpu::InlineAll;
