//! Free Launch (Chen & Shen, MICRO 2015) — the paper's other related
//! launch-elimination mechanism (§VI): a compiler transform that replaces
//! child-kernel launches with reuse of the already-running parent
//! threads, load-balancing the child tasks across them.
//!
//! The simulator models the transform's effect as intra-warp
//! redistribution ([`LaunchDecision::Redistribute`]): the would-be
//! child's items are spread evenly over the launching warp's lanes. This
//! removes both the launch overhead *and* the divergence penalty, but the
//! work stays on the parent's core — there is no extra parallelism, which
//! is exactly the trade-off that distinguishes Free Launch from DP.

use dynapar_gpu::{ChildRequest, LaunchController, LaunchDecision, MetricsRegistry};

/// The Free-Launch policy: redistribute every candidate above the
/// application's own `THRESHOLD`; smaller workloads run inline as usual.
///
/// # Examples
///
/// ```
/// use dynapar_core::FreeLaunch;
/// use dynapar_gpu::LaunchController;
/// assert_eq!(FreeLaunch::new().name(), "Free-Launch");
/// ```
#[derive(Debug, Default)]
pub struct FreeLaunch {
    redistributed: u64,
    inlined: u64,
}

impl FreeLaunch {
    /// Creates the policy.
    pub fn new() -> Self {
        FreeLaunch::default()
    }

    /// Candidates redistributed across their warps.
    pub fn redistributed(&self) -> u64 {
        self.redistributed
    }

    /// Candidates below threshold, run as ordinary serial loops.
    pub fn inlined(&self) -> u64 {
        self.inlined
    }
}

impl LaunchController for FreeLaunch {
    fn name(&self) -> &str {
        "Free-Launch"
    }

    fn decide(&mut self, req: &ChildRequest) -> LaunchDecision {
        if req.items > req.default_threshold {
            self.redistributed += 1;
            LaunchDecision::Redistribute
        } else {
            self.inlined += 1;
            LaunchDecision::Inline
        }
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter("policy.free_launch.redistributed", self.redistributed);
        reg.counter("policy.free_launch.inlined", self.inlined);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynapar_engine::Cycle;
    use dynapar_gpu::KernelId;

    fn req(items: u32) -> ChildRequest {
        ChildRequest {
            now: Cycle(0),
            parent_kernel: KernelId(0),
            depth: 1,
            items,
            child_ctas: 2,
            child_threads: 128,
            child_warps_per_cta: 2,
            warp_prior_launches: 0,
            default_threshold: 100,
            pending_kernels: 0,
        }
    }

    #[test]
    fn redistributes_over_threshold_only() {
        let mut p = FreeLaunch::new();
        assert_eq!(p.decide(&req(101)), LaunchDecision::Redistribute);
        assert_eq!(p.decide(&req(100)), LaunchDecision::Inline);
        assert_eq!(p.redistributed(), 1);
        assert_eq!(p.inlined(), 1);
    }

    #[test]
    fn exports_decision_counters() {
        use dynapar_gpu::{MetricsLevel, MetricsRegistry};
        let mut p = FreeLaunch::new();
        p.decide(&req(101));
        p.decide(&req(1));
        let mut reg = MetricsRegistry::new(MetricsLevel::Summary);
        p.export_metrics(&mut reg);
        let json = reg.to_json();
        assert_eq!(
            json.get("policy.free_launch.redistributed").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            json.get("policy.free_launch.inlined").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn never_creates_kernels_or_ctas() {
        let mut p = FreeLaunch::new();
        for items in [1u32, 1000, 100_000] {
            let d = p.decide(&req(items));
            assert_ne!(d, LaunchDecision::Kernel);
            assert_ne!(d, LaunchDecision::Aggregated);
        }
    }

    mod end_to_end {
        use super::*;
        use std::sync::Arc;

        use dynapar_gpu::{
            DpSpec, GpuConfig, KernelDesc, Simulation, ThreadSource, ThreadWork, WorkClass,
        };

        fn imbalanced() -> KernelDesc {
            let threads: Vec<ThreadWork> = (0..256)
                .map(|t| ThreadWork {
                    items: if t % 32 == 0 { 640 } else { 0 },
                    seq_base: t as u64 * 8192,
                    rand_seed: t as u64,
                })
                .collect();
            KernelDesc {
                name: "fl".into(),
                cta_threads: 64,
                regs_per_thread: 16,
                shmem_per_cta: 0,
                class: Arc::new(WorkClass::compute_only("fl-parent", 16)),
                source: ThreadSource::Explicit(threads.into()),
                dp: Some(Arc::new(DpSpec {
                    child_class: Arc::new(WorkClass::compute_only("fl-child", 16)),
                    child_cta_threads: 64,
                    child_items_per_thread: 1,
                    child_regs_per_thread: 16,
                    child_shmem_per_cta: 0,
                    min_items: 8,
                    default_threshold: 64,
                    nested: None,
                })),
            }
        }

        #[test]
        fn redistribution_conserves_work_and_beats_flat_on_divergence() {
            let cfg = GpuConfig::test_small();
            let mut sim = Simulation::builder(cfg.clone()).build();
            sim.launch_host(imbalanced());
            let flat = sim.run().report;

            let mut sim = Simulation::builder(cfg)
                .controller(Box::new(FreeLaunch::new()))
                .build();
            sim.launch_host(imbalanced());
            let fl = sim.run().report;

            assert_eq!(flat.items_total(), fl.items_total());
            assert_eq!(fl.child_kernels_launched, 0);
            assert!(fl.redistributed_requests > 0);
            // One hot lane per warp -> redistribution flattens 640 rounds
            // into ~20 per lane: Free Launch must crush flat here.
            assert!(
                fl.total_cycles * 2 < flat.total_cycles,
                "Free Launch {} vs flat {}",
                fl.total_cycles,
                flat.total_cycles
            );
        }
    }
}
