//! Post-run analysis of launch behaviour, reconstructed from the
//! simulator's per-kernel lifecycle summaries.
//!
//! The CCQS tracks `n` (child CTAs in flight) online; this module
//! rebuilds the same quantity *offline* from a [`SimReport`], which lets
//! experiments study queue dynamics for *any* policy (Baseline-DP has no
//! CCQS) and validate that SPAWN's online view matches reality.

use dynapar_gpu::{KernelRole, SimReport};

/// One step of the reconstructed queue-depth curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuePoint {
    /// Cycle of the change.
    pub at: u64,
    /// Child kernels in flight (created, not yet own-complete) after it.
    pub in_flight: u64,
}

/// Reconstructed launch/queue dynamics of one run.
#[derive(Debug, Clone)]
pub struct LaunchAnalysis {
    points: Vec<QueuePoint>,
    peak: u64,
    total_children: u64,
    mean_lifetime: f64,
}

impl LaunchAnalysis {
    /// Builds the analysis from a report's kernel table.
    pub fn of(report: &SimReport) -> Self {
        // Events: +1 at creation, -1 at own completion.
        let mut events: Vec<(u64, i64)> = Vec::new();
        let mut total_children = 0u64;
        let mut lifetime_sum = 0u128;
        for k in &report.kernels {
            if k.role != KernelRole::Child {
                continue;
            }
            total_children += 1;
            events.push((k.created_at, 1));
            if let Some(done) = k.own_done_at {
                events.push((done, -1));
                lifetime_sum += (done - k.created_at) as u128;
            }
        }
        events.sort_unstable();
        let mut points = Vec::with_capacity(events.len());
        let mut depth: i64 = 0;
        let mut peak = 0i64;
        for (at, delta) in events {
            depth += delta;
            peak = peak.max(depth);
            match points.last_mut() {
                Some(QueuePoint { at: last, in_flight }) if *last == at => {
                    *in_flight = depth as u64;
                }
                _ => points.push(QueuePoint {
                    at,
                    in_flight: depth as u64,
                }),
            }
        }
        LaunchAnalysis {
            points,
            peak: peak as u64,
            total_children,
            mean_lifetime: if total_children == 0 {
                0.0
            } else {
                lifetime_sum as f64 / total_children as f64
            },
        }
    }

    /// The step curve of in-flight child kernels over time.
    pub fn points(&self) -> &[QueuePoint] {
        &self.points
    }

    /// Maximum child kernels simultaneously in flight.
    pub fn peak_in_flight(&self) -> u64 {
        self.peak
    }

    /// Number of child kernels the run created.
    pub fn total_children(&self) -> u64 {
        self.total_children
    }

    /// Mean creation-to-completion lifetime of a child kernel, in cycles
    /// (this is the *actual* `t_child` that Eq. 1 estimates).
    pub fn mean_lifetime(&self) -> f64 {
        self.mean_lifetime
    }

    /// In-flight depth at cycle `t` (0 before the first launch).
    pub fn depth_at(&self, t: u64) -> u64 {
        match self.points.partition_point(|p| p.at <= t) {
            0 => 0,
            i => self.points[i - 1].in_flight,
        }
    }

    /// Time-weighted mean in-flight depth over the run.
    pub fn mean_depth(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 || self.points.is_empty() {
            return 0.0;
        }
        let mut integral = 0u128;
        for w in self.points.windows(2) {
            integral += (w[0].in_flight as u128) * ((w[1].at - w[0].at) as u128);
        }
        if let Some(last) = self.points.last() {
            if last.at < total_cycles {
                integral += (last.in_flight as u128) * ((total_cycles - last.at) as u128);
            }
        }
        integral as f64 / total_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use dynapar_gpu::{
        DpSpec, GpuConfig, KernelDesc, Simulation, ThreadSource, ThreadWork, WorkClass,
    };

    fn report_with_children() -> SimReport {
        let threads: Vec<ThreadWork> = (0..128)
            .map(|t| ThreadWork {
                items: if t % 8 == 0 { 200 } else { 2 },
                seq_base: t as u64 * 4096,
                rand_seed: t as u64,
            })
            .collect();
        let cfg = GpuConfig::test_small();
        let mut sim = Simulation::builder(cfg)
            .controller(Box::new(crate::AlwaysLaunch::new()))
            .build();
        sim.launch_host(KernelDesc {
            name: "an".into(),
            cta_threads: 64,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass::compute_only("an-p", 8)),
            source: ThreadSource::Explicit(threads.into()),
            dp: Some(Arc::new(DpSpec {
                child_class: Arc::new(WorkClass::compute_only("an-c", 8)),
                child_cta_threads: 32,
                child_items_per_thread: 1,
                child_regs_per_thread: 8,
                child_shmem_per_cta: 0,
                min_items: 8,
                default_threshold: 8,
                nested: None,
            })),
        });
        sim.run().report
    }

    #[test]
    fn reconstruction_matches_report_counters() {
        let r = report_with_children();
        let a = LaunchAnalysis::of(&r);
        assert_eq!(a.total_children(), r.child_kernels_launched);
        assert!(a.peak_in_flight() > 0);
        assert!(a.peak_in_flight() <= a.total_children());
        // All children completed: the curve returns to zero.
        assert_eq!(a.points().last().expect("non-empty").in_flight, 0);
        // Lifetimes include the launch overhead floor.
        assert!(a.mean_lifetime() >= GpuConfig::test_small().launch.b as f64);
    }

    #[test]
    fn depth_queries_are_consistent_with_the_curve() {
        let r = report_with_children();
        let a = LaunchAnalysis::of(&r);
        assert_eq!(a.depth_at(0), a.points().first().map_or(0, |p| {
            if p.at == 0 {
                p.in_flight
            } else {
                0
            }
        }));
        for w in a.points().windows(2) {
            let mid = (w[0].at + w[1].at) / 2;
            assert_eq!(a.depth_at(mid), w[0].in_flight);
        }
        let mean = a.mean_depth(r.total_cycles);
        assert!(mean > 0.0);
        assert!(mean <= a.peak_in_flight() as f64);
    }

    #[test]
    fn empty_run_yields_empty_analysis() {
        let cfg = GpuConfig::test_small();
        let mut sim = Simulation::builder(cfg).build();
        sim.launch_host(KernelDesc {
            name: "empty".into(),
            cta_threads: 32,
            regs_per_thread: 8,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass::compute_only("e", 2)),
            source: ThreadSource::Derived {
                origin: ThreadWork::with_items(64),
                items_per_thread: 1,
            },
            dp: None,
        });
        let r = sim.run().report;
        let a = LaunchAnalysis::of(&r);
        assert_eq!(a.total_children(), 0);
        assert_eq!(a.peak_in_flight(), 0);
        assert_eq!(a.mean_lifetime(), 0.0);
        assert_eq!(a.depth_at(1_000_000), 0);
        assert_eq!(a.mean_depth(r.total_cycles), 0.0);
    }
}
