//! The Child CTA Queuing System (CCQS) of §IV-A.
//!
//! CCQS models the Grid Management Unit as a queue and the SMXs as a
//! server: launched child kernels contribute CTAs ("jobs"), and the system
//! tracks exactly the four metrics §IV-B monitors:
//!
//! * `n`      — child CTAs in the system (pending + running); incremented
//!   at the launch decision (Algorithm 1 line 8), decremented when a CTA
//!   finishes and leaves the system;
//! * `t_cta`  — running average child-CTA execution time, updated only
//!   when a CTA finishes;
//! * `n_con`  — average number of concurrently-executing child CTAs over
//!   1024-cycle windows with shift-based division;
//! * `t_warp` — average child-warp execution time, also windowed.

use dynapar_engine::stats::{RunningMean, WindowedEventAvg, WindowedTimeAvg};
use dynapar_engine::Cycle;

/// Monitored-metric state for the SPAWN controller.
///
/// # Examples
///
/// ```
/// use dynapar_core::Ccqs;
/// use dynapar_engine::Cycle;
///
/// let mut q = Ccqs::new(10, 65_536);
/// assert_eq!(q.t_cta(), 0); // bootstrap: no CTA has finished yet
/// q.on_decided_launch(4);
/// assert_eq!(q.in_system(), 4);
/// q.on_cta_start(Cycle(100));
/// q.on_cta_finish(Cycle(600), 500);
/// assert_eq!(q.in_system(), 3);
/// assert_eq!(q.t_cta(), 500);
/// ```
#[derive(Debug)]
pub struct Ccqs {
    n: u64,
    t_cta: RunningMean,
    n_con: WindowedTimeAvg,
    t_warp: WindowedEventAvg,
    max_queue: u64,
    peak_n: u64,
    /// Saturation bound applied to recorded cycle samples (the proposed
    /// hardware uses 16-bit counters, §IV-B); `u64::MAX` = unbounded.
    sample_cap: u64,
}

impl Ccqs {
    /// Creates a CCQS with `2^window_log2`-cycle metric windows and a
    /// maximum of `max_queue` child CTAs in flight (the paper uses 1024
    /// cycles and 65,536 CTAs, per the Kepler pending-pool size).
    pub fn new(window_log2: u32, max_queue: u64) -> Self {
        Ccqs {
            n: 0,
            t_cta: RunningMean::new(),
            n_con: WindowedTimeAvg::new(window_log2),
            t_warp: WindowedEventAvg::new(window_log2),
            max_queue,
            peak_n: 0,
            sample_cap: u64::MAX,
        }
    }

    /// Restricts recorded execution-time samples to 16 bits, mirroring
    /// the 16-bit cycle counters of the paper's proposed hardware (the
    /// 416-byte CTA table and 16-bit `n` register of §IV-B). Samples
    /// saturate rather than wrap.
    pub fn with_hardware_widths(mut self) -> Self {
        self.sample_cap = u16::MAX as u64;
        self
    }

    /// Algorithm 1 line 8: a launch was approved, adding `ctas` jobs.
    pub fn on_decided_launch(&mut self, ctas: u64) {
        self.n += ctas;
        self.peak_n = self.peak_n.max(self.n);
    }

    /// A child CTA began executing on an SMX.
    pub fn on_cta_start(&mut self, now: Cycle) {
        self.n_con.add(now, 1);
    }

    /// A child CTA finished after `exec_cycles` on-core cycles.
    ///
    /// Tolerates more finishes than recorded launches (`n` saturates at 0)
    /// because aggregated/DTBL CTAs observed by a shared monitor do not
    /// pass through [`on_decided_launch`](Ccqs::on_decided_launch).
    pub fn on_cta_finish(&mut self, now: Cycle, exec_cycles: u64) {
        self.n = self.n.saturating_sub(1);
        self.n_con.add(now, -1);
        self.t_cta.add(exec_cycles.min(self.sample_cap));
    }

    /// A child warp finished after `exec_cycles`.
    pub fn on_warp_finish(&mut self, now: Cycle, exec_cycles: u64) {
        self.t_warp.record(now, exec_cycles.min(self.sample_cap));
    }

    /// Seeds `t_cta`/`t_warp` with one synthetic sample each, as if one
    /// child CTA had already completed — the warm-start prior used by the
    /// `SpawnPolicy::with_warm_start` extension.
    pub fn seed_priors(&mut self, t_cta: u64, t_warp: u64) {
        if t_cta > 0 {
            self.t_cta.add(t_cta);
        }
        if t_warp > 0 {
            self.t_warp.record(Cycle::ZERO, t_warp);
        }
    }

    /// Rolls the metric windows forward to `now` (call before reading the
    /// windowed metrics at a decision point).
    pub fn advance(&mut self, now: Cycle) {
        self.n_con.advance(now);
        self.t_warp.advance(now);
    }

    /// `n`: child CTAs in the system.
    pub fn in_system(&self) -> u64 {
        self.n
    }

    /// `t_cta`: average child CTA execution time (0 until one finishes).
    pub fn t_cta(&self) -> u64 {
        self.t_cta.mean()
    }

    /// `n_con`: windowed average of concurrently-executing child CTAs.
    pub fn n_con(&self) -> u64 {
        self.n_con.value()
    }

    /// `t_warp`: windowed average child warp execution time.
    pub fn t_warp(&self) -> u64 {
        self.t_warp.value()
    }

    /// Would admitting `ctas` more jobs overflow the queue bound?
    /// (Algorithm 1's `n + x ≤ max_queue_size` guard.)
    pub fn would_overflow(&self, ctas: u64) -> bool {
        self.n + ctas > self.max_queue
    }

    /// Highest `n` ever observed.
    pub fn peak_in_system(&self) -> u64 {
        self.peak_n
    }

    /// Number of CTA-finish samples folded into `t_cta`.
    pub fn finished_ctas(&self) -> u64 {
        self.t_cta.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_is_conserved() {
        let mut q = Ccqs::new(4, 100);
        q.on_decided_launch(3);
        q.on_decided_launch(2);
        assert_eq!(q.in_system(), 5);
        for i in 0..5 {
            q.on_cta_start(Cycle(i * 10));
        }
        for i in 0..5 {
            q.on_cta_finish(Cycle(100 + i * 10), 50);
        }
        assert_eq!(q.in_system(), 0);
        assert_eq!(q.finished_ctas(), 5);
        assert_eq!(q.peak_in_system(), 5);
    }

    #[test]
    fn n_never_goes_negative() {
        let mut q = Ccqs::new(4, 100);
        q.on_cta_finish(Cycle(10), 5); // finish with no recorded launch
        assert_eq!(q.in_system(), 0);
    }

    #[test]
    fn t_cta_is_running_mean() {
        let mut q = Ccqs::new(4, 100);
        q.on_cta_finish(Cycle(1), 100);
        q.on_cta_finish(Cycle(2), 300);
        assert_eq!(q.t_cta(), 200);
    }

    #[test]
    fn n_con_windows_concurrency() {
        let mut q = Ccqs::new(4, 100); // 16-cycle windows
        q.on_decided_launch(2);
        q.on_cta_start(Cycle(0));
        q.on_cta_start(Cycle(0));
        q.advance(Cycle(16));
        assert_eq!(q.n_con(), 2);
        q.on_cta_finish(Cycle(16), 16);
        q.on_cta_finish(Cycle(24), 24);
        q.advance(Cycle(32));
        // Second window: 1 CTA for 8 cycles, 0 for 8 -> floor(8*1/16) = 0.
        assert_eq!(q.n_con(), 0);
    }

    #[test]
    fn overflow_guard() {
        let mut q = Ccqs::new(4, 10);
        assert!(!q.would_overflow(10));
        assert!(q.would_overflow(11));
        q.on_decided_launch(8);
        assert!(!q.would_overflow(2));
        assert!(q.would_overflow(3));
    }

    #[test]
    fn hardware_widths_saturate_samples() {
        let mut q = Ccqs::new(4, 100).with_hardware_widths();
        q.on_cta_finish(Cycle(1), 1_000_000); // would overflow 16 bits
        assert_eq!(q.t_cta(), u16::MAX as u64);
        q.on_warp_finish(Cycle(2), 1_000_000);
        assert_eq!(q.t_warp(), u16::MAX as u64);
    }

    #[test]
    fn t_warp_windowed_with_fallback() {
        let mut q = Ccqs::new(4, 100);
        assert_eq!(q.t_warp(), 0);
        q.on_warp_finish(Cycle(1), 40);
        q.on_warp_finish(Cycle(2), 60);
        // Window incomplete: all-time mean fallback.
        assert_eq!(q.t_warp(), 50);
        q.advance(Cycle(16));
        assert_eq!(q.t_warp(), 50);
    }

    /// `n_con` at the paper's 1024-cycle window edge: cycle 1023 is the last
    /// cycle of window 0 (`1023 >> 10 == 0`), cycle 1024 the first of window
    /// 1 (`1024 >> 10 == 1`). A decision exactly at `Cycle(1024)` must read
    /// the shift-divided average of window 0, and a one-cycle-earlier
    /// decision must still read the pre-window bootstrap value of 0.
    #[test]
    fn n_con_at_the_1024_cycle_window_edge() {
        let mut q = Ccqs::new(10, 65_536);
        q.on_decided_launch(3);
        q.on_cta_start(Cycle(0));
        q.on_cta_start(Cycle(256)); // 2 concurrent from 256
        q.on_cta_start(Cycle(768)); // 3 concurrent from 768

        q.advance(Cycle(1023)); // one cycle short: window 0 not complete
        assert_eq!(q.n_con(), 0, "no completed window before cycle 1024");

        q.advance(Cycle(1024)); // window edge: the shift happens here
        // 1*256 + 2*512 + 3*256 = 2048; 2048 >> 10 = 2.
        assert_eq!(q.n_con(), 2);
        assert_eq!(q.in_system(), 3, "advance never perturbs `n`");
    }

    /// Events on either side of the power-of-two shift land in different
    /// windows: a start at 1023 counts toward window 0's average, a start at
    /// 1024 only toward window 1's, and the window-0 report holds unchanged
    /// until the *next* edge at 2048.
    #[test]
    fn n_con_splits_events_across_the_shift_boundary() {
        let mut q = Ccqs::new(10, 65_536);
        q.on_decided_launch(2);
        q.on_cta_start(Cycle(1023)); // last cycle of window 0
        q.on_cta_start(Cycle(1024)); // first cycle of window 1
        q.advance(Cycle(1024));
        // Window 0 saw 1 CTA for exactly 1 cycle: 1 >> 10 = 0.
        assert_eq!(q.n_con(), 0);
        q.advance(Cycle(2047)); // window 1 still open: report unchanged
        assert_eq!(q.n_con(), 0);
        q.advance(Cycle(2048));
        // Window 1: 2 concurrent for all 1024 cycles -> 2048 >> 10 = 2.
        assert_eq!(q.n_con(), 2);
    }

    /// `t_warp` across the 1024-cycle edge: the all-time-mean fallback gives
    /// way to the per-window mean once the first window containing samples
    /// closes, and samples recorded at exactly `Cycle(1024)` belong to the
    /// second window. Deterministic seeded sample values throughout.
    #[test]
    fn t_warp_switches_from_fallback_at_the_1024_cycle_edge() {
        let mut q = Ccqs::new(10, 65_536);
        q.on_warp_finish(Cycle(100), 200);
        q.on_warp_finish(Cycle(1023), 400); // still window 0
        q.advance(Cycle(1023));
        assert_eq!(q.t_warp(), 300, "open window reads the all-time mean");

        q.on_warp_finish(Cycle(1024), 1_000); // first sample of window 1
        // Recording at 1024 closed window 0: its mean (300) is now the
        // reported value, and the 1_000 sample does not leak into it.
        assert_eq!(q.t_warp(), 300);

        q.advance(Cycle(2048)); // window 1 closes
        assert_eq!(q.t_warp(), 1_000);
    }
}
