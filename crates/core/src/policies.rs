//! Static launch policies: the comparison points of §V.

use dynapar_gpu::{ChildRequest, LaunchController, LaunchDecision};

/// Baseline-DP: the unmodified dynamic-parallelism program. A parent
/// thread launches a child kernel whenever its workload exceeds the
/// application's own `THRESHOLD` (the value the benchmark author wrote
/// into the source, carried in [`ChildRequest::default_threshold`]).
///
/// # Examples
///
/// ```
/// use dynapar_core::BaselineDp;
/// use dynapar_gpu::LaunchController;
/// assert_eq!(BaselineDp::new().name(), "Baseline-DP");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineDp;

impl BaselineDp {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        BaselineDp
    }
}

impl LaunchController for BaselineDp {
    fn name(&self) -> &str {
        "Baseline-DP"
    }

    fn decide(&mut self, req: &ChildRequest) -> LaunchDecision {
        if req.items > req.default_threshold {
            LaunchDecision::Kernel
        } else {
            LaunchDecision::Inline
        }
    }
}

/// A fixed workload-distribution point: launch whenever the thread's
/// workload exceeds `threshold`, ignoring the application default.
///
/// Sweeping this policy over a threshold grid is how the paper's static
/// characterization (Fig. 5) and the Offline-Search scheme (§V-B,
/// footnote 7) are produced.
#[derive(Debug, Clone, Copy)]
pub struct FixedThreshold {
    threshold: u32,
}

impl FixedThreshold {
    /// Creates a policy with the given `THRESHOLD`.
    pub fn new(threshold: u32) -> Self {
        FixedThreshold { threshold }
    }

    /// The threshold in force.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

impl LaunchController for FixedThreshold {
    fn name(&self) -> &str {
        "Fixed-Threshold"
    }

    fn decide(&mut self, req: &ChildRequest) -> LaunchDecision {
        if req.items > self.threshold {
            LaunchDecision::Kernel
        } else {
            LaunchDecision::Inline
        }
    }
}

/// Launches every candidate (threshold 0) — the most aggressive static
/// point, useful in characterization sweeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysLaunch;

impl AlwaysLaunch {
    /// Creates the policy.
    pub fn new() -> Self {
        AlwaysLaunch
    }
}

impl LaunchController for AlwaysLaunch {
    fn name(&self) -> &str {
        "Always-Launch"
    }

    fn decide(&mut self, _req: &ChildRequest) -> LaunchDecision {
        LaunchDecision::Kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynapar_engine::Cycle;
    use dynapar_gpu::KernelId;

    fn req(items: u32, default_threshold: u32) -> ChildRequest {
        ChildRequest {
            now: Cycle(0),
            parent_kernel: KernelId(0),
            depth: 1,
            items,
            child_ctas: 1,
            child_threads: 64,
            child_warps_per_cta: 2,
            warp_prior_launches: 0,
            default_threshold,
            pending_kernels: 0,
        }
    }

    #[test]
    fn baseline_honours_app_threshold() {
        let mut p = BaselineDp::new();
        assert_eq!(p.decide(&req(129, 128)), LaunchDecision::Kernel);
        assert_eq!(p.decide(&req(128, 128)), LaunchDecision::Inline);
        assert_eq!(p.decide(&req(10, 128)), LaunchDecision::Inline);
    }

    #[test]
    fn fixed_threshold_overrides_app_threshold() {
        let mut p = FixedThreshold::new(1000);
        assert_eq!(p.threshold(), 1000);
        // App default says launch, fixed threshold says no.
        assert_eq!(p.decide(&req(500, 128)), LaunchDecision::Inline);
        assert_eq!(p.decide(&req(1001, 128)), LaunchDecision::Kernel);
    }

    #[test]
    fn zero_threshold_launches_everything() {
        let mut p = FixedThreshold::new(0);
        assert_eq!(p.decide(&req(1, u32::MAX)), LaunchDecision::Kernel);
        let mut a = AlwaysLaunch::new();
        assert_eq!(a.decide(&req(1, u32::MAX)), LaunchDecision::Kernel);
    }
}
