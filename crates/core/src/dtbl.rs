//! Dynamic Thread Block Launch (Wang et al., ISCA 2015) — the alternate
//! mechanism the paper compares against in §V-D / Fig. 21.
//!
//! DTBL never creates device-side kernels: when a parent thread would
//! launch a child, its CTAs are instead *coalesced* onto an existing
//! aggregated kernel with the same CTA dimensions and instruction
//! sequence. This removes the `A·x + b` kernel-launch overhead and frees
//! DTBL from the 32-HWQ concurrent-kernel limit, but — as the paper
//! stresses — the *number of CTAs stays the same*, so workloads
//! bottlenecked by the concurrent-CTA limit still queue.

use dynapar_engine::stats::RunningMean;
use dynapar_gpu::{ChildRequest, ControllerEvent, LaunchController, LaunchDecision, MetricsRegistry};

/// The DTBL launch policy: aggregate every candidate above the
/// application's own `THRESHOLD` (like Baseline-DP, but through the
/// coalesced CTA path).
///
/// # Examples
///
/// ```
/// use dynapar_core::Dtbl;
/// use dynapar_gpu::LaunchController;
/// assert_eq!(Dtbl::new().name(), "DTBL");
/// ```
#[derive(Debug, Default)]
pub struct Dtbl {
    aggregated: u64,
    inlined: u64,
    cta_exec: RunningMean,
}

impl Dtbl {
    /// Creates the DTBL policy.
    pub fn new() -> Self {
        Dtbl::default()
    }

    /// Logical launches that were coalesced.
    pub fn aggregated(&self) -> u64 {
        self.aggregated
    }

    /// Requests below threshold, executed in the parent.
    pub fn inlined(&self) -> u64 {
        self.inlined
    }

    /// Mean execution time of observed child CTAs (diagnostic).
    pub fn mean_cta_exec(&self) -> u64 {
        self.cta_exec.mean()
    }
}

impl LaunchController for Dtbl {
    fn name(&self) -> &str {
        "DTBL"
    }

    fn decide(&mut self, req: &ChildRequest) -> LaunchDecision {
        if req.items > req.default_threshold {
            self.aggregated += 1;
            LaunchDecision::Aggregated
        } else {
            self.inlined += 1;
            LaunchDecision::Inline
        }
    }

    fn observe(&mut self, ev: &ControllerEvent) {
        if let ControllerEvent::ChildCtaFinish { exec_cycles, .. } = *ev {
            self.cta_exec.add(exec_cycles);
        }
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter("policy.dtbl.aggregated", self.aggregated);
        reg.counter("policy.dtbl.inlined", self.inlined);
        reg.counter("policy.dtbl.mean_cta_exec", self.cta_exec.mean());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynapar_engine::Cycle;
    use dynapar_gpu::KernelId;

    fn req(items: u32) -> ChildRequest {
        ChildRequest {
            now: Cycle(0),
            parent_kernel: KernelId(0),
            depth: 1,
            items,
            child_ctas: 2,
            child_threads: 128,
            child_warps_per_cta: 2,
            warp_prior_launches: 0,
            default_threshold: 100,
            pending_kernels: 0,
        }
    }

    #[test]
    fn aggregates_over_threshold() {
        let mut p = Dtbl::new();
        assert_eq!(p.decide(&req(101)), LaunchDecision::Aggregated);
        assert_eq!(p.decide(&req(100)), LaunchDecision::Inline);
        assert_eq!(p.aggregated(), 1);
        assert_eq!(p.inlined(), 1);
    }

    #[test]
    fn never_launches_kernels() {
        let mut p = Dtbl::new();
        for items in [1u32, 50, 1000, 100_000] {
            assert_ne!(p.decide(&req(items)), LaunchDecision::Kernel);
        }
    }

    #[test]
    fn tracks_cta_exec() {
        let mut p = Dtbl::new();
        p.observe(&ControllerEvent::ChildCtaFinish {
            now: Cycle(10),
            exec_cycles: 100,
        });
        p.observe(&ControllerEvent::ChildCtaFinish {
            now: Cycle(20),
            exec_cycles: 200,
        });
        assert_eq!(p.mean_cta_exec(), 150);
    }
}
