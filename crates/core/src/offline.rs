//! Offline-Search: the exhaustive static sweep of §V (footnote 7).
//!
//! The paper's Offline-Search scheme picks, per benchmark, the best
//! workload-distribution ratio found by sweeping `THRESHOLD` offline.
//! [`sweep`] runs a caller-supplied simulation once per threshold with a
//! [`FixedThreshold`] policy and reports every point plus the winner —
//! which is also exactly the data behind Fig. 5.

use dynapar_gpu::{Json, SimReport, Simulation, SimulationBuilder};

use crate::policies::FixedThreshold;

/// One point of a threshold sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The `THRESHOLD` used for this run.
    pub threshold: u32,
    /// The full report of the run.
    pub report: SimReport,
}

impl SweepPoint {
    /// Fraction of work offloaded at this point (Fig. 5's x-axis).
    pub fn offload_fraction(&self) -> f64 {
        self.report.offload_fraction()
    }
}

/// The result of an offline threshold sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Builds a result from already-simulated points (the parallel runner
    /// produces points with [`par_map`](dynapar_engine::par::par_map) and
    /// assembles them here).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn from_points(points: Vec<SweepPoint>) -> Self {
        assert!(!points.is_empty(), "sweep must contain at least one point");
        SweepResult { points }
    }

    /// All points, in the order swept.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The point with the lowest execution time — what Offline-Search
    /// would deploy.
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    pub fn best(&self) -> &SweepPoint {
        self.points
            .iter()
            .min_by_key(|p| p.report.total_cycles)
            .expect("sweep must contain at least one point")
    }

    /// `(offload_fraction, speedup_over_baseline)` series for plotting
    /// Fig. 5, normalized to `baseline_cycles` (the flat run).
    pub fn speedup_series(&self, baseline_cycles: u64) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.offload_fraction(), p.report.speedup_over(baseline_cycles)))
            .collect()
    }
}

/// Runs `simulate` once per threshold with a [`FixedThreshold`] policy.
///
/// The closure owns workload construction and simulator setup; `sweep`
/// only owns the policy grid. This inversion keeps `dynapar-core` free of
/// any workload knowledge.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dynapar_core::offline::sweep;
/// use dynapar_gpu::{
///     GpuConfig, KernelDesc, Simulation, ThreadSource, ThreadWork, WorkClass,
/// };
///
/// let result = sweep(&[8, 64, 1024], |policy| {
///     let mut sim = Simulation::builder(GpuConfig::test_small())
///         .controller(policy)
///         .build();
///     sim.launch_host(KernelDesc {
///         name: "sweep-demo".into(),
///         cta_threads: 64,
///         regs_per_thread: 16,
///         shmem_per_cta: 0,
///         class: Arc::new(WorkClass::compute_only("p", 8)),
///         source: ThreadSource::Derived {
///             origin: ThreadWork::with_items(4096),
///             items_per_thread: 16,
///         },
///         dp: None,
///     });
///     sim.run().report
/// });
/// assert_eq!(result.points().len(), 3);
/// let _ = result.best();
/// ```
pub fn sweep<F>(thresholds: &[u32], mut simulate: F) -> SweepResult
where
    F: FnMut(Box<dyn dynapar_gpu::LaunchController>) -> SimReport,
{
    assert!(!thresholds.is_empty(), "sweep needs at least one threshold");
    let points = thresholds
        .iter()
        .map(|&t| SweepPoint {
            threshold: t,
            report: simulate(Box::new(FixedThreshold::new(t))),
        })
        .collect();
    SweepResult { points }
}

/// [`sweep`] across up to `jobs` worker threads.
///
/// Each threshold's simulation is independent, so the points (and thus
/// the sweep result) are bit-identical to the serial [`sweep`] for any
/// `jobs` value; `jobs <= 1` runs serially on the calling thread. The
/// closure is shared across workers and must therefore be `Fn + Sync`
/// rather than `FnMut`.
///
/// # Panics
///
/// Panics if `thresholds` is empty, or propagates a panic from `simulate`.
pub fn sweep_par<F>(thresholds: &[u32], jobs: usize, simulate: F) -> SweepResult
where
    F: Fn(Box<dyn dynapar_gpu::LaunchController>) -> SimReport + Sync,
{
    assert!(!thresholds.is_empty(), "sweep needs at least one threshold");
    let points = dynapar_engine::par::par_map(thresholds.to_vec(), jobs, |t| SweepPoint {
        threshold: t,
        report: simulate(Box::new(FixedThreshold::new(t))),
    });
    SweepResult::from_points(points)
}

/// [`sweep_par`] with a *warm-started* fork: the first threshold's run
/// doubles as the shared ramp — it arms a snapshot at cycle `warmup` and
/// runs to completion — and every other threshold resumes from that
/// snapshot instead of re-simulating cycles `0..warmup`.
///
/// The fork is taken only when the snapshot is *pristine* (no launch
/// decisions happened by `warmup`, so the ramp is identical under every
/// threshold — see `DESIGN.md` §13); otherwise, or when the run finishes
/// before `warmup`, the remaining points silently fall back to cold
/// runs. Either way every point's report is bit-identical to
/// [`sweep_par`]'s — warm-starting is a wall-clock optimization, never a
/// result change (pinned by this module's tests and the server's
/// byte-identity matrix).
///
/// Unlike [`sweep_par`], construction is split in two so the driver can
/// interpose the snapshot machinery between them: `configure` yields the
/// point's [`SimulationBuilder`] (config, metrics, backend — everything
/// but the controller), and `workload` registers host kernels on a
/// freshly built simulation. Resumed forks restore the workload from the
/// snapshot, so `workload` runs only for cold builds.
///
/// # Panics
///
/// Panics if `thresholds` is empty, or propagates a panic from the
/// closures.
pub fn sweep_par_warm<C, W>(
    thresholds: &[u32],
    jobs: usize,
    warmup: u64,
    configure: C,
    workload: W,
) -> SweepResult
where
    C: Fn() -> SimulationBuilder + Sync,
    W: Fn(&mut Simulation) + Sync,
{
    assert!(!thresholds.is_empty(), "sweep needs at least one threshold");
    let cold = |t: u32| -> SweepPoint {
        let mut sim = configure()
            .controller(Box::new(FixedThreshold::new(t)))
            .build();
        workload(&mut sim);
        SweepPoint {
            threshold: t,
            report: sim.run().report,
        }
    };
    // The ramp run is also the first sweep point.
    let mut sim = configure()
        .controller(Box::new(FixedThreshold::new(thresholds[0])))
        .snapshot_at(warmup)
        .build();
    workload(&mut sim);
    let outcome = sim.run();
    let first = SweepPoint {
        threshold: thresholds[0],
        report: outcome.report,
    };
    // Fork only from a pristine ramp; a non-pristine one is only valid
    // for the threshold that produced it.
    let snapshot = outcome.snapshot.filter(|s| {
        dynapar_gpu::parse_snapshot(s)
            .ok()
            .and_then(|(job, _)| job.get("pristine").and_then(Json::as_bool))
            == Some(true)
    });
    let rest = dynapar_engine::par::par_map(thresholds[1..].to_vec(), jobs, |t| {
        let forked = snapshot.as_deref().and_then(|snap| {
            configure()
                .controller(Box::new(FixedThreshold::new(t)))
                .build_resumed(snap)
                .ok()
        });
        match forked {
            Some(sim) => SweepPoint {
                threshold: t,
                report: sim.run().report,
            },
            None => cold(t),
        }
    });
    let mut points = vec![first];
    points.extend(rest);
    SweepResult::from_points(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynapar_gpu::mem::MemStats;

    fn fake_report(cycles: u64, inline: u64, child: u64) -> SimReport {
        SimReport {
            controller: "Fixed-Threshold".into(),
            total_cycles: cycles,
            child_kernels_launched: 0,
            launch_requests: 0,
            inlined_requests: 0,
            redistributed_requests: 0,
            aggregated_launches: 0,
            aggregated_ctas: 0,
            child_ctas_executed: 0,
            items_inline: inline,
            items_child: child,
            occupancy: 0.5,
            mem: MemStats::default(),
            dram_row_hit_rate: 0.0,
            avg_child_queue_latency: 0.0,
            max_pending_kernels: 0,
            timeline: vec![],
            child_cta_exec_cycles: vec![],
            child_launch_cycles: vec![],
            events_processed: 0,
            events_global: 0,
            events_local: 0,
            dead_wakeups: 0,
            peak_queue_depth: 0,
            peak_local_backlog: 0,
            wall_ms: 0.0,
            kernels: vec![],
        }
    }

    #[test]
    fn best_picks_lowest_cycles() {
        let cycles = [300u64, 100, 200];
        let mut i = 0;
        let result = sweep(&[1, 2, 3], |_| {
            let r = fake_report(cycles[i], 50, 50);
            i += 1;
            r
        });
        assert_eq!(result.best().threshold, 2);
        assert_eq!(result.points().len(), 3);
    }

    #[test]
    fn speedup_series_shapes() {
        let mut i = 0;
        let result = sweep(&[1, 2], |_| {
            i += 1;
            fake_report(100 * i, 100 - i, i)
        });
        let series = result.speedup_series(400);
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 4.0).abs() < 1e-12);
        assert!((series[1].1 - 2.0).abs() < 1e-12);
        assert!(series[0].0 < series[1].0);
    }

    #[test]
    #[should_panic(expected = "at least one threshold")]
    fn empty_sweep_rejected() {
        sweep(&[], |_| fake_report(1, 1, 0));
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let grid = [1u32, 2, 4, 8, 16, 32];
        let run = |mut policy: Box<dyn dynapar_gpu::LaunchController>| {
            // Deterministic pseudo-simulation keyed off the policy's
            // threshold (recovered by probing decisions), so any
            // order mix-up in the parallel path would be visible.
            let t = (1..=64u32)
                .filter(|&items| {
                    policy.decide(&dynapar_gpu::ChildRequest {
                        now: dynapar_engine::Cycle(0),
                        parent_kernel: dynapar_gpu::KernelId(0),
                        depth: 1,
                        items,
                        child_ctas: 1,
                        child_threads: 32,
                        child_warps_per_cta: 1,
                        warp_prior_launches: 0,
                        default_threshold: 0,
                        pending_kernels: 0,
                    }) == dynapar_gpu::LaunchDecision::Inline
                })
                .count() as u64;
            fake_report(1000 - t * 3, 100 - t, t)
        };
        let serial = sweep(&grid, run);
        let parallel = sweep_par(&grid, 4, run);
        assert_eq!(serial.points().len(), parallel.points().len());
        for (s, p) in serial.points().iter().zip(parallel.points()) {
            assert_eq!(s.threshold, p.threshold);
            assert_eq!(s.report.total_cycles, p.report.total_cycles);
            assert_eq!(s.report.items_child, p.report.items_child);
        }
        assert_eq!(serial.best().threshold, parallel.best().threshold);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_points_rejected() {
        SweepResult::from_points(vec![]);
    }

    mod warm {
        use super::super::*;
        use dynapar_gpu::{
            DpSpec, GpuConfig, KernelDesc, MetricsLevel, ThreadSource, ThreadWork, WorkClass,
        };
        use std::sync::Arc;

        /// Two-phase workload shaped like the paper's benchmarks: a flat
        /// preprocessing kernel (no DP), then a DP phase. The NULL-stream
        /// serialization makes every cycle of phase one a pristine ramp.
        fn workload(sim: &mut Simulation) {
            sim.launch_host(KernelDesc {
                name: "ramp".into(),
                cta_threads: 64,
                regs_per_thread: 16,
                shmem_per_cta: 0,
                class: Arc::new(WorkClass::compute_only("ramp", 16)),
                source: ThreadSource::Derived {
                    origin: ThreadWork::with_items(64 * 64),
                    items_per_thread: 64,
                },
                dp: None,
            });
            let threads: Vec<ThreadWork> = (0..64)
                .map(|t| ThreadWork {
                    items: if t % 8 == 0 { 60 } else { 2 },
                    seq_base: 0,
                    rand_seed: t as u64,
                })
                .collect();
            sim.launch_host(KernelDesc {
                name: "dp".into(),
                cta_threads: 64,
                regs_per_thread: 16,
                shmem_per_cta: 0,
                class: Arc::new(WorkClass::compute_only("p", 8)),
                source: ThreadSource::Explicit(threads.into()),
                dp: Some(Arc::new(DpSpec {
                    child_class: Arc::new(WorkClass::compute_only("c", 8)),
                    child_cta_threads: 32,
                    child_items_per_thread: 1,
                    child_regs_per_thread: 8,
                    child_shmem_per_cta: 0,
                    min_items: 8,
                    default_threshold: 8,
                    nested: None,
                })),
            });
        }

        fn configure() -> SimulationBuilder {
            Simulation::builder(GpuConfig::test_small()).metrics(MetricsLevel::Summary)
        }

        const WARMUP: u64 = 500;

        #[test]
        fn warm_fork_matches_cold_sweep() {
            // The chosen warm-up cycle really is inside the pristine ramp
            // (otherwise this test would silently cover only the cold
            // fallback path).
            let mut sim = configure()
                .controller(Box::new(FixedThreshold::new(4)))
                .snapshot_at(WARMUP)
                .build();
            workload(&mut sim);
            let snap = sim.run().snapshot.expect("ramp longer than WARMUP");
            let (job, _) = dynapar_gpu::parse_snapshot(&snap).unwrap();
            assert_eq!(job.get("pristine").and_then(Json::as_bool), Some(true));

            let grid = [4u32, 16, 64];
            let cold = sweep_par(&grid, 2, |policy| {
                let mut sim = configure().controller(policy).build();
                workload(&mut sim);
                sim.run().report
            });
            let warm = sweep_par_warm(&grid, 2, WARMUP, configure, workload);
            for (c, w) in cold.points().iter().zip(warm.points()) {
                assert_eq!(c.threshold, w.threshold);
                assert_eq!(c.report.total_cycles, w.report.total_cycles);
                assert_eq!(c.report.items_inline, w.report.items_inline);
                assert_eq!(c.report.items_child, w.report.items_child);
                assert_eq!(c.report.launch_requests, w.report.launch_requests);
                assert_eq!(c.report.child_kernels_launched, w.report.child_kernels_launched);
                assert_eq!(c.report.events_global, w.report.events_global);
                assert_eq!(c.report.peak_queue_depth, w.report.peak_queue_depth);
                assert_eq!(c.report.occupancy.to_bits(), w.report.occupancy.to_bits());
            }
            assert_eq!(cold.best().threshold, warm.best().threshold);
        }

        #[test]
        fn warm_sweep_falls_back_when_the_run_ends_early() {
            let grid = [4u32, 64];
            let cold = sweep_par(&grid, 2, |policy| {
                let mut sim = configure().controller(policy).build();
                workload(&mut sim);
                sim.run().report
            });
            // A warm-up beyond the run's end yields no snapshot; every
            // point must come from the cold path, unchanged.
            let warm = sweep_par_warm(&grid, 2, u64::MAX - 1, configure, workload);
            for (c, w) in cold.points().iter().zip(warm.points()) {
                assert_eq!(c.threshold, w.threshold);
                assert_eq!(c.report.total_cycles, w.report.total_cycles);
                assert_eq!(c.report.items_child, w.report.items_child);
            }
        }
    }
}
