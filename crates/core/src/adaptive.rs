//! An online hill-climbing threshold tuner — an *extension* beyond the
//! paper, used as an additional comparison point in the ablation study.
//!
//! The paper motivates SPAWN by showing that the best static `THRESHOLD`
//! varies per `<application, input>` pair and is expensive to find
//! offline. A natural alternative to SPAWN's analytic cost model is
//! empirical search at runtime: start from the application's threshold,
//! periodically perturb it, and keep the direction that improves a
//! throughput proxy. `AdaptiveThreshold` implements exactly that, using
//! child-CTA completion throughput per epoch as the reward signal.
//!
//! Compared to SPAWN it needs no queuing model, but it reacts a full
//! epoch late and cannot make per-kernel decisions — the two properties
//! the paper's design argues for.

use dynapar_engine::Cycle;
use dynapar_gpu::{ChildRequest, ControllerEvent, LaunchController, LaunchDecision, MetricsRegistry};

/// Hill-climbing state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Up,
    Down,
}

/// Online threshold tuner (extension; see module docs).
///
/// # Examples
///
/// ```
/// use dynapar_core::AdaptiveThreshold;
/// use dynapar_gpu::LaunchController;
///
/// let p = AdaptiveThreshold::new(64, 4096);
/// assert_eq!(p.name(), "Adaptive-Threshold");
/// assert_eq!(p.threshold(), 64);
/// ```
#[derive(Debug)]
pub struct AdaptiveThreshold {
    threshold: u32,
    epoch_cycles: u64,
    epoch_start: Cycle,
    // Reward bookkeeping: items admitted to children this epoch vs the
    // previous epoch (completion-weighted).
    finished_this_epoch: u64,
    last_rate: f64,
    direction: Direction,
    min_threshold: u32,
    max_threshold: u32,
    adjustments: u32,
}

impl AdaptiveThreshold {
    /// Creates a tuner starting from `initial` with `epoch_cycles`-long
    /// evaluation epochs.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_cycles` is zero.
    pub fn new(initial: u32, epoch_cycles: u64) -> Self {
        assert!(epoch_cycles > 0, "epochs must have positive length");
        AdaptiveThreshold {
            threshold: initial.max(1),
            epoch_cycles,
            epoch_start: Cycle::ZERO,
            finished_this_epoch: 0,
            last_rate: 0.0,
            direction: Direction::Down,
            min_threshold: 1,
            max_threshold: u32::MAX / 2,
            adjustments: 0,
        }
    }

    /// The threshold currently in force.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Number of threshold adjustments made so far.
    pub fn adjustments(&self) -> u32 {
        self.adjustments
    }

    fn maybe_rollover(&mut self, now: Cycle) {
        let elapsed = now.saturating_sub(self.epoch_start).as_u64();
        if elapsed < self.epoch_cycles {
            return;
        }
        let rate = self.finished_this_epoch as f64 / elapsed as f64;
        // Keep climbing while the child-completion rate improves; reverse
        // when it regresses. Multiplicative steps cover the huge dynamic
        // range of plausible thresholds quickly.
        if rate < self.last_rate {
            self.direction = match self.direction {
                Direction::Up => Direction::Down,
                Direction::Down => Direction::Up,
            };
        }
        self.threshold = match self.direction {
            Direction::Up => (self.threshold.saturating_mul(2)).min(self.max_threshold),
            Direction::Down => (self.threshold / 2).max(self.min_threshold),
        };
        self.adjustments += 1;
        self.last_rate = rate;
        self.finished_this_epoch = 0;
        self.epoch_start = now;
    }
}

impl LaunchController for AdaptiveThreshold {
    fn name(&self) -> &str {
        "Adaptive-Threshold"
    }

    fn decide(&mut self, req: &ChildRequest) -> LaunchDecision {
        self.maybe_rollover(req.now);
        if req.items > self.threshold {
            LaunchDecision::Kernel
        } else {
            LaunchDecision::Inline
        }
    }

    fn observe(&mut self, ev: &ControllerEvent) {
        if let ControllerEvent::ChildCtaFinish { now, .. } = *ev {
            self.finished_this_epoch += 1;
            self.maybe_rollover(now);
        }
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter("policy.adaptive.threshold", self.threshold as u64);
        reg.counter("policy.adaptive.adjustments", self.adjustments as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynapar_gpu::KernelId;

    fn req(now: u64, items: u32) -> ChildRequest {
        ChildRequest {
            now: Cycle(now),
            parent_kernel: KernelId(0),
            depth: 1,
            items,
            child_ctas: 1,
            child_threads: 64,
            child_warps_per_cta: 2,
            warp_prior_launches: 0,
            default_threshold: 64,
            pending_kernels: 0,
        }
    }

    #[test]
    fn honours_current_threshold() {
        let mut p = AdaptiveThreshold::new(100, 1_000_000);
        assert_eq!(p.decide(&req(0, 101)), LaunchDecision::Kernel);
        assert_eq!(p.decide(&req(1, 100)), LaunchDecision::Inline);
    }

    #[test]
    fn adjusts_at_epoch_boundaries_only() {
        let mut p = AdaptiveThreshold::new(100, 1_000);
        p.decide(&req(10, 1));
        assert_eq!(p.adjustments(), 0);
        p.decide(&req(999, 1));
        assert_eq!(p.adjustments(), 0);
        p.decide(&req(1_001, 1));
        assert_eq!(p.adjustments(), 1);
    }

    #[test]
    fn reverses_direction_when_rate_regresses() {
        let mut p = AdaptiveThreshold::new(64, 1_000);
        // Epoch 1: strong completion rate.
        for i in 0..50 {
            p.observe(&ControllerEvent::ChildCtaFinish {
                now: Cycle(i),
                exec_cycles: 10,
            });
        }
        p.decide(&req(1_001, 1)); // rollover 1 (initial direction: Down)
        let t1 = p.threshold();
        assert!(t1 < 64);
        // Epoch 2: rate collapses -> direction must flip at next rollover.
        p.decide(&req(2_100, 1));
        let t2 = p.threshold();
        assert!(t2 > t1, "should climb back up after regression");
    }

    #[test]
    fn threshold_stays_in_bounds() {
        let mut p = AdaptiveThreshold::new(1, 10);
        // Repeated regressing epochs oscillate but never leave bounds.
        for e in 1..200u64 {
            p.decide(&req(e * 11, 1));
            assert!(p.threshold() >= 1);
            assert!(p.threshold() <= u32::MAX / 2);
        }
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_epoch_rejected() {
        AdaptiveThreshold::new(1, 0);
    }
}
