//! The canonical, typed launch-policy specification.
//!
//! [`PolicySpec`] is the one place a policy name (`"spawn"`,
//! `"threshold:32"`, …) becomes a [`LaunchController`]. The CLI's
//! `--policy` flag, the `dynapar-server` request API, and the perf
//! harness all parse through [`PolicySpec::parse`] and build through
//! [`PolicySpec::controller`], so a `dynapar run` and a server `submit`
//! with the same policy string construct *byte-identical* controllers —
//! including the artifact-affecting rule that a metrics-collecting SPAWN
//! run logs its Eq. 1 predictions. [`PolicySpec::label`] round-trips
//! with `parse` and is the policy's canonical spelling inside
//! [`CanonicalConfig`](dynapar_gpu::CanonicalConfig), so the memo key
//! and the baseline gate agree with the builders by construction.

use dynapar_gpu::{GpuConfig, LaunchController, MetricsLevel};

use crate::{
    AdaptiveThreshold, AlwaysLaunch, BaselineDp, Dtbl, FixedThreshold, FreeLaunch, SpawnPolicy,
};

/// Which launch policy to run — the parsed form of a policy string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicySpec {
    /// Flat (non-DP): inline every candidate in the parent thread.
    Flat,
    /// Baseline-DP (the application's own threshold).
    Baseline,
    /// SPAWN (the paper's contribution).
    Spawn,
    /// DTBL aggregation (ISCA'15).
    Dtbl,
    /// Launch every candidate.
    Always,
    /// Fixed threshold `N` (spelled `threshold:N`).
    Threshold(u32),
    /// Online hill-climbing threshold tuner.
    Adaptive,
    /// Free-Launch-style intra-warp redistribution (MICRO'15).
    FreeLaunch,
}

impl PolicySpec {
    /// Parses a policy spec string.
    ///
    /// Accepted forms: `flat`, `baseline`, `spawn`, `dtbl`, `always`,
    /// `adaptive`, `freelaunch` (or `free-launch`), `threshold:N`.
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted forms on unknown input.
    ///
    /// # Examples
    ///
    /// ```
    /// use dynapar_core::PolicySpec;
    /// assert_eq!(PolicySpec::parse("threshold:32"), Ok(PolicySpec::Threshold(32)));
    /// assert!(PolicySpec::parse("warp-speed").is_err());
    /// ```
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "flat" => Ok(PolicySpec::Flat),
            "baseline" => Ok(PolicySpec::Baseline),
            "spawn" => Ok(PolicySpec::Spawn),
            "dtbl" => Ok(PolicySpec::Dtbl),
            "always" => Ok(PolicySpec::Always),
            "adaptive" => Ok(PolicySpec::Adaptive),
            "freelaunch" | "free-launch" => Ok(PolicySpec::FreeLaunch),
            other => {
                if let Some(t) = other.strip_prefix("threshold:") {
                    t.parse()
                        .map(PolicySpec::Threshold)
                        .map_err(|_| format!("bad threshold in {other:?}"))
                } else {
                    Err(format!(
                        "unknown policy {other:?}; expected flat|baseline|spawn|dtbl|always|adaptive|freelaunch|threshold:N"
                    ))
                }
            }
        }
    }

    /// The canonical spelling: `parse(label())` round-trips, and this
    /// string is the `policy` member of the canonical run identity.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Flat => "flat".into(),
            PolicySpec::Baseline => "baseline".into(),
            PolicySpec::Spawn => "spawn".into(),
            PolicySpec::Dtbl => "dtbl".into(),
            PolicySpec::Always => "always".into(),
            PolicySpec::Threshold(t) => format!("threshold:{t}"),
            PolicySpec::Adaptive => "adaptive".into(),
            PolicySpec::FreeLaunch => "free-launch".into(),
        }
    }

    /// Builds the controller for one run.
    ///
    /// `default_threshold` is the application's static `THRESHOLD`
    /// (seeds the adaptive tuner); `metrics` is the run's collection
    /// level. The metrics level matters because a metrics-collecting
    /// SPAWN run logs its Eq. 1 completion-time predictions (the
    /// artifact's `ccqs_samples` section needs estimate-vs-actual
    /// pairs), and the log changes artifact bytes — so the rule must
    /// live here, on the single shared path, or a CLI run and a server
    /// run of the same config would diverge.
    pub fn controller(
        &self,
        cfg: &GpuConfig,
        default_threshold: u32,
        metrics: MetricsLevel,
    ) -> Box<dyn LaunchController> {
        match self {
            PolicySpec::Flat => Box::new(dynapar_gpu::InlineAll),
            PolicySpec::Baseline => Box::new(BaselineDp::new()),
            PolicySpec::Spawn => {
                if metrics != MetricsLevel::Off {
                    Box::new(SpawnPolicy::from_config(cfg).with_prediction_log())
                } else {
                    Box::new(SpawnPolicy::from_config(cfg))
                }
            }
            PolicySpec::Dtbl => Box::new(Dtbl::new()),
            PolicySpec::Always => Box::new(AlwaysLaunch::new()),
            PolicySpec::Threshold(t) => Box::new(FixedThreshold::new(*t)),
            PolicySpec::Adaptive => {
                Box::new(AdaptiveThreshold::new(default_threshold.max(1), 1 << 14))
            }
            PolicySpec::FreeLaunch => Box::new(FreeLaunch::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_label_round_trip() {
        for s in [
            "flat",
            "baseline",
            "spawn",
            "dtbl",
            "always",
            "adaptive",
            "free-launch",
            "threshold:7",
        ] {
            let p = PolicySpec::parse(s).expect(s);
            assert_eq!(
                PolicySpec::parse(&p.label()),
                Ok(p.clone()),
                "label must re-parse: {s}"
            );
        }
        // The alias normalizes to the canonical spelling.
        assert_eq!(PolicySpec::parse("freelaunch").unwrap().label(), "free-launch");
        assert!(PolicySpec::parse("threshold:x").is_err());
        assert!(PolicySpec::parse("nope").is_err());
    }

    #[test]
    fn controller_names_match_policies() {
        let cfg = GpuConfig::test_small();
        let cases = [
            (PolicySpec::Flat, "Flat"),
            (PolicySpec::Baseline, "Baseline-DP"),
            (PolicySpec::Spawn, "SPAWN"),
            (PolicySpec::Dtbl, "DTBL"),
        ];
        for (spec, want) in cases {
            let c = spec.controller(&cfg, 64, MetricsLevel::Off);
            assert_eq!(c.name(), want, "{spec:?}");
        }
    }

    #[test]
    fn spawn_logs_predictions_only_when_collecting_metrics() {
        // The rule is observable through the policy's prediction log:
        // present (possibly empty) when logging, absent when not.
        let cfg = GpuConfig::test_small();
        let on = PolicySpec::Spawn.controller(&cfg, 64, MetricsLevel::Full);
        assert!(on.predictions().is_some(), "metrics on => log enabled");
        let off = PolicySpec::Spawn.controller(&cfg, 64, MetricsLevel::Off);
        assert!(off.predictions().is_none(), "metrics off => no log");
    }
}
