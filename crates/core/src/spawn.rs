//! The SPAWN controller — Algorithm 1 of the paper.

use dynapar_gpu::{
    ChildRequest, ControllerEvent, LaunchController, LaunchDecision, LaunchOverheadModel,
    MetricsRegistry, MonitoredMetrics,
};

use crate::ccqs::Ccqs;

/// Per-run decision statistics exposed for analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpawnStats {
    /// Launches approved during the bootstrap phase (`t_cta == 0`).
    pub bootstrap_launches: u64,
    /// Launches approved by the cost model (`t_child ≤ t_parent`).
    pub modeled_launches: u64,
    /// Requests sent back to the parent thread.
    pub inlined: u64,
    /// Requests denied purely by the queue-size guard.
    pub queue_rejections: u64,
}

/// SPAWN: dynamic launch control of child kernels (§IV).
///
/// At every device-launch site the controller estimates
///
/// ```text
/// t_child  ≈ launch_overhead + (x + n) · t_cta / n_con     (Eq. 1)
/// t_parent ≈ workload · t_warp                             (Eq. 2)
/// ```
///
/// and spawns the child only when `t_child ≤ t_parent` and the CCQS bound
/// admits the new CTAs (Algorithm 1). Until the first child CTA completes
/// (`t_cta == 0`) every request is approved — the paper's initialization
/// rule, which it notes can misfire for benchmarks whose entire launch
/// burst precedes the first completion (SSSP-graph500).
///
/// # Examples
///
/// ```
/// use dynapar_core::SpawnPolicy;
/// use dynapar_gpu::{GpuConfig, LaunchController};
///
/// let cfg = GpuConfig::kepler_k20m();
/// let policy = SpawnPolicy::from_config(&cfg);
/// assert_eq!(policy.name(), "SPAWN");
/// ```
#[derive(Debug)]
pub struct SpawnPolicy {
    ccqs: Ccqs,
    overhead: LaunchOverheadModel,
    stats: SpawnStats,
    trace: bool,
    decisions: u64,
    queue_term: bool,
    aggregate: bool,
    /// When enabled, records the Eq. 1 estimate for every approved
    /// launch, in decision order (which matches child-kernel creation
    /// order in the simulator) — used by the model-accuracy experiment.
    prediction_log: Option<Vec<u64>>,
}

impl SpawnPolicy {
    /// Creates a SPAWN controller with explicit parameters.
    pub fn new(overhead: LaunchOverheadModel, window_log2: u32, max_queue: u64) -> Self {
        SpawnPolicy {
            ccqs: Ccqs::new(window_log2, max_queue),
            overhead,
            stats: SpawnStats::default(),
            trace: std::env::var_os("DYNAPAR_SPAWN_TRACE").is_some(),
            decisions: 0,
            queue_term: true,
            aggregate: false,
            prediction_log: None,
        }
    }

    /// Creates a SPAWN controller matching a simulator configuration
    /// (overhead model, metric window, and the 65,536-CTA queue bound).
    pub fn from_config(cfg: &dynapar_gpu::GpuConfig) -> Self {
        Self::new(
            cfg.launch,
            cfg.metric_window_log2,
            cfg.pending_pool_cap as u64,
        )
    }

    /// Creates a SPAWN controller whose monitored metrics start from
    /// warm-start priors instead of zero — an *extension* of the paper's
    /// design (Algorithm 1 boots with `t_cta = 0` and launches blindly
    /// until the first child CTA completes; a deployment that remembers
    /// metrics from a previous kernel invocation behaves like this).
    /// Used by the ablation study in the benchmark harness.
    pub fn with_warm_start(
        overhead: LaunchOverheadModel,
        window_log2: u32,
        max_queue: u64,
        t_cta_prior: u64,
        t_warp_prior: u64,
    ) -> Self {
        let mut p = Self::new(overhead, window_log2, max_queue);
        p.ccqs.seed_priors(t_cta_prior, t_warp_prior);
        p
    }

    /// Quantizes the monitored metrics to the 16-bit counter widths of
    /// the paper's proposed hardware (§IV-B) — the fidelity mode used by
    /// the ablation study to check that counter saturation does not
    /// change decisions materially.
    pub fn with_hardware_widths(mut self) -> Self {
        let ccqs = std::mem::replace(&mut self.ccqs, Ccqs::new(1, 1));
        self.ccqs = ccqs.with_hardware_widths();
        self
    }

    /// Enables logging of the Eq. 1 completion-time estimate for every
    /// approved launch; read back with
    /// [`predictions`](SpawnPolicy::predictions) after the run.
    pub fn with_prediction_log(mut self) -> Self {
        self.prediction_log = Some(Vec::new());
        self
    }

    /// The logged Eq. 1 estimates (empty unless
    /// [`with_prediction_log`](SpawnPolicy::with_prediction_log) was used).
    /// Entry `i` corresponds to the `i`-th child kernel the run created.
    pub fn predictions(&self) -> &[u64] {
        self.prediction_log.as_deref().unwrap_or(&[])
    }

    /// Routes approved launches through DTBL-style CTA aggregation instead
    /// of device kernel launches — the natural synthesis §V-D invites:
    /// Algorithm 1 still throttles by queue state, while the approved
    /// children skip the `A·x + b` kernel path. An extension beyond the
    /// paper, evaluated in the ablation study as `spawn+dtbl`.
    pub fn with_aggregated_launches(mut self) -> Self {
        self.aggregate = true;
        self
    }

    /// Disables the queuing-latency term of Eq. 1 (`n·t_cta/n_con`),
    /// leaving only launch overhead and service time — the ablation that
    /// isolates how much of SPAWN's behaviour comes from queue feedback.
    pub fn without_queue_term(mut self) -> Self {
        self.queue_term = false;
        self
    }

    /// Decision statistics for the run so far.
    pub fn stats(&self) -> SpawnStats {
        self.stats
    }

    /// Read-only view of the monitored metrics.
    pub fn ccqs(&self) -> &Ccqs {
        &self.ccqs
    }

    fn launch_decision(&self) -> LaunchDecision {
        if self.aggregate {
            LaunchDecision::Aggregated
        } else {
            LaunchDecision::Kernel
        }
    }
}

impl LaunchController for SpawnPolicy {
    fn name(&self) -> &str {
        if self.aggregate {
            "SPAWN+DTBL"
        } else {
            "SPAWN"
        }
    }

    fn decide(&mut self, req: &ChildRequest) -> LaunchDecision {
        self.ccqs.advance(req.now);
        let x = req.child_ctas as u64;
        let t_cta = self.ccqs.t_cta();

        // Algorithm 1 lines 2–4: bootstrap until the metrics are warm.
        if t_cta == 0 {
            if self.ccqs.would_overflow(x) {
                self.stats.queue_rejections += 1;
                self.stats.inlined += 1;
                return LaunchDecision::Inline;
            }
            self.ccqs.on_decided_launch(x);
            self.stats.bootstrap_launches += 1;
            if let Some(log) = self.prediction_log.as_mut() {
                // No service estimate yet: the overhead term is all the
                // bootstrap knows.
                log.push(
                    self.overhead
                        .kernel_latency(req.warp_prior_launches as u64 + 1),
                );
            }
            return self.launch_decision();
        }

        // Line 5: t_child = t_overhead + (x + n) * t_cta / n_con.
        let n = if self.queue_term {
            self.ccqs.in_system()
        } else {
            0
        };
        let n_con = self.ccqs.n_con().max(1);
        let t_overhead = self.overhead.kernel_latency(req.warp_prior_launches as u64 + 1);
        let t_child = t_overhead + (x + n) * t_cta / n_con;

        // Line 6: t_parent = workload * t_warp.
        let t_parent = req.items as u64 * self.ccqs.t_warp();

        self.decisions += 1;
        if self.trace && self.decisions.is_multiple_of(512) {
            eprintln!(
                "spawn-trace now={} items={} t_child={} t_parent={} n={} t_cta={} n_con={} t_warp={}",
                req.now.as_u64(),
                req.items,
                t_child,
                t_parent,
                n,
                t_cta,
                n_con,
                self.ccqs.t_warp(),
            );
        }
        // Line 7: spawn iff cheaper and the queue admits the CTAs.
        if t_child <= t_parent {
            if self.ccqs.would_overflow(x) {
                self.stats.queue_rejections += 1;
                self.stats.inlined += 1;
                return LaunchDecision::Inline;
            }
            self.ccqs.on_decided_launch(x);
            self.stats.modeled_launches += 1;
            if let Some(log) = self.prediction_log.as_mut() {
                log.push(t_child);
            }
            self.launch_decision()
        } else {
            self.stats.inlined += 1;
            LaunchDecision::Inline
        }
    }

    fn observe(&mut self, ev: &ControllerEvent) {
        match *ev {
            ControllerEvent::ChildCtaStart { now } => self.ccqs.on_cta_start(now),
            ControllerEvent::ChildCtaFinish { now, exec_cycles } => {
                self.ccqs.on_cta_finish(now, exec_cycles)
            }
            ControllerEvent::ChildWarpFinish { now, exec_cycles } => {
                self.ccqs.on_warp_finish(now, exec_cycles)
            }
        }
    }

    fn monitored(&self) -> Option<MonitoredMetrics> {
        // Read-only by contract: the windowed metrics are reported as of
        // the last `advance` (the most recent decision), never rolled
        // forward here, so telemetry sampling cannot change decisions.
        Some(MonitoredMetrics {
            in_system: self.ccqs.in_system(),
            t_cta: self.ccqs.t_cta(),
            n_con: self.ccqs.n_con(),
            t_warp: self.ccqs.t_warp(),
        })
    }

    fn predictions(&self) -> Option<&[u64]> {
        self.prediction_log.as_deref()
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter("policy.spawn.bootstrap_launches", self.stats.bootstrap_launches);
        reg.counter("policy.spawn.modeled_launches", self.stats.modeled_launches);
        reg.counter("policy.spawn.inlined", self.stats.inlined);
        reg.counter("policy.spawn.queue_rejections", self.stats.queue_rejections);
        reg.counter("policy.spawn.ccqs.in_system", self.ccqs.in_system());
        reg.counter("policy.spawn.ccqs.peak_in_system", self.ccqs.peak_in_system());
        reg.counter("policy.spawn.ccqs.finished_ctas", self.ccqs.finished_ctas());
        reg.counter("policy.spawn.ccqs.t_cta", self.ccqs.t_cta());
        reg.counter("policy.spawn.ccqs.t_warp", self.ccqs.t_warp());
        reg.counter("policy.spawn.ccqs.n_con", self.ccqs.n_con());
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynapar_engine::Cycle;
    use dynapar_gpu::KernelId;

    fn request(now: u64, items: u32, ctas: u32, prior: u32) -> ChildRequest {
        ChildRequest {
            now: Cycle(now),
            parent_kernel: KernelId(0),
            depth: 1,
            items,
            child_ctas: ctas,
            child_threads: ctas * 64,
            child_warps_per_cta: 2,
            warp_prior_launches: prior,
            default_threshold: 128,
            pending_kernels: 0,
        }
    }

    fn policy() -> SpawnPolicy {
        SpawnPolicy::new(LaunchOverheadModel::default(), 4, 1000)
    }

    #[test]
    fn bootstrap_always_launches() {
        let mut p = policy();
        for i in 0..5 {
            assert_eq!(p.decide(&request(i, 10, 1, 0)), LaunchDecision::Kernel);
        }
        assert_eq!(p.stats().bootstrap_launches, 5);
        assert_eq!(p.ccqs().in_system(), 5);
    }

    /// Warms the metrics so the cost model becomes active: child CTAs take
    /// `cta_exec` cycles, warps take `warp_exec`, with `conc` concurrent.
    fn warm(p: &mut SpawnPolicy, cta_exec: u64, warp_exec: u64, conc: u32) {
        for _ in 0..conc {
            p.decide(&request(0, 1000, 1, 0));
        }
        for i in 0..conc {
            p.observe(&ControllerEvent::ChildCtaStart { now: Cycle(i as u64) });
        }
        for i in 0..conc {
            p.observe(&ControllerEvent::ChildWarpFinish {
                now: Cycle(100 + i as u64),
                exec_cycles: warp_exec,
            });
            p.observe(&ControllerEvent::ChildCtaFinish {
                now: Cycle(100 + i as u64),
                exec_cycles: cta_exec,
            });
        }
    }

    #[test]
    fn launches_when_parent_would_be_slower() {
        let mut p = policy();
        warm(&mut p, 2000, 500, 8);
        // t_overhead ~ 21931; t_child ~ 21931 + (4+0)*2000/n_con.
        // t_parent = 1000 * 500 = 500_000 >> t_child: launch.
        let d = p.decide(&request(10_000, 1000, 4, 0));
        assert_eq!(d, LaunchDecision::Kernel);
        assert_eq!(p.stats().modeled_launches, 1);
    }

    #[test]
    fn inlines_small_workloads_once_warm() {
        let mut p = policy();
        warm(&mut p, 2000, 500, 8);
        // t_parent = 40 * 500 = 20_000 < t_overhead alone (21931): inline.
        let d = p.decide(&request(10_000, 40, 1, 0));
        assert_eq!(d, LaunchDecision::Inline);
        assert_eq!(p.stats().inlined, 1);
    }

    #[test]
    fn queue_bound_rejects() {
        let mut p = SpawnPolicy::new(LaunchOverheadModel::default(), 4, 10);
        // Bootstrap launches until the queue bound would be exceeded.
        assert_eq!(p.decide(&request(0, 100, 8, 0)), LaunchDecision::Kernel);
        assert_eq!(p.decide(&request(1, 100, 8, 0)), LaunchDecision::Inline);
        assert_eq!(p.stats().queue_rejections, 1);
    }

    #[test]
    fn prior_launches_raise_overhead_estimate() {
        // With many prior launches, the overhead term alone can exceed
        // t_parent and flip the decision.
        let mut p = policy();
        warm(&mut p, 100, 30, 8);
        let items = 800; // t_parent = 800*30 = 24_000
        // prior=0: t_overhead = 21931 + small queue term -> launch.
        assert_eq!(p.decide(&request(10_000, items, 1, 0)), LaunchDecision::Kernel);
        // prior=5: t_overhead = 1721*6 + 20210 = 30_536 -> inline.
        assert_eq!(p.decide(&request(10_001, items, 1, 5)), LaunchDecision::Inline);
    }

    #[test]
    fn queuing_backlog_discourages_launches() {
        let mut p = policy();
        warm(&mut p, 1000, 50, 4);
        // Flood the queue with approved launches to grow n.
        for i in 0..200 {
            p.decide(&request(20_000 + i, 100_000, 4, 0));
        }
        let n_before = p.ccqs().in_system();
        assert!(n_before > 100, "backlog built up");
        // A moderate workload now sees a long queue: t_child includes
        // n * t_cta / n_con which dwarfs t_parent.
        let d = p.decide(&request(30_000, 500, 4, 0));
        assert_eq!(d, LaunchDecision::Inline);
    }
}

#[cfg(test)]
mod integration_tests {
    use super::*;
    use std::sync::Arc;

    use dynapar_gpu::{
        DpSpec, GpuConfig, KernelDesc, Simulation, ThreadSource, ThreadWork, WorkClass,
    };

    #[test]
    fn stats_are_inspectable_after_a_run() {
        let cfg = GpuConfig::test_small();
        let mut sim = Simulation::builder(cfg.clone())
            .controller(Box::new(SpawnPolicy::from_config(&cfg)))
            .build();
        let threads: Vec<ThreadWork> = (0..128)
            .map(|t| ThreadWork {
                items: if t % 16 == 0 { 300 } else { 2 },
                seq_base: t as u64 * 4096,
                rand_seed: t as u64,
            })
            .collect();
        sim.launch_host(KernelDesc {
            name: "stats".into(),
            cta_threads: 64,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            class: Arc::new(WorkClass::compute_only("p", 16)),
            source: ThreadSource::Explicit(threads.into()),
            dp: Some(Arc::new(DpSpec {
                child_class: Arc::new(WorkClass::compute_only("c", 16)),
                child_cta_threads: 32,
                child_items_per_thread: 1,
                child_regs_per_thread: 8,
                child_shmem_per_cta: 0,
                min_items: 16,
                default_threshold: 64,
                nested: None,
            })),
        });
        let outcome = sim.run();
        let report = &outcome.report;
        // Recover the concrete policy to read its counters.
        let stats_total = report.launch_requests;
        assert!(stats_total > 0);
        // The controller's own accounting must agree with the simulator's.
        let name = outcome.controller.name().to_string();
        assert_eq!(name, "SPAWN");
        assert_eq!(report.controller, "SPAWN");
        let policy = outcome
            .controller
            .as_any()
            .and_then(|a| a.downcast_ref::<SpawnPolicy>())
            .expect("downcast to SpawnPolicy");
        let s = policy.stats();
        assert_eq!(
            s.bootstrap_launches + s.modeled_launches + s.inlined,
            report.launch_requests
        );
    }
}

#[cfg(test)]
mod decision_matrix {
    //! Table-driven coverage of Algorithm 1: every combination of
    //! (metrics warm?, queue depth, workload size, prior launches)
    //! against the expected decision.

    use super::*;
    use dynapar_engine::Cycle;
    use dynapar_gpu::KernelId;

    fn request(items: u32, ctas: u32, prior: u32) -> ChildRequest {
        ChildRequest {
            now: Cycle(1 << 20),
            parent_kernel: KernelId(0),
            depth: 1,
            items,
            child_ctas: ctas,
            child_threads: ctas * 64,
            child_warps_per_cta: 2,
            warp_prior_launches: prior,
            default_threshold: 0,
            pending_kernels: 0,
        }
    }

    /// Builds a policy with fully-controlled metrics: `t_cta`, `t_warp`
    /// seeded; `n` raised to `backlog` via approved launches; `n_con`
    /// left at its pre-window value of 0 (so Algorithm 1's max(1) floor
    /// applies) unless `conc` CTAs are started inside the first window.
    fn policy_with(t_cta: u64, t_warp: u64, backlog: u64) -> SpawnPolicy {
        let mut p = SpawnPolicy::with_warm_start(
            LaunchOverheadModel::default(),
            10,
            1 << 20,
            t_cta,
            t_warp,
        );
        if backlog > 0 {
            // Approve one launch of `backlog` CTAs to set n.
            let d = p.decide(&request(u32::MAX, backlog as u32, 0));
            assert_eq!(d, LaunchDecision::Kernel);
        }
        p
    }

    #[test]
    fn matrix_no_backlog() {
        // t_child = 21931 + x*t_cta; t_parent = items * t_warp.
        // With t_cta=400, t_warp=400, n=0, n_con=1:
        for (items, ctas, expect) in [
            // t_parent = 400*items vs t_child = 21931 + 400*ctas
            (10u32, 1u32, LaunchDecision::Inline),   // 4k < 22.3k
            (56, 1, LaunchDecision::Kernel),         // 22.4k just clears 22.33k
            (100, 1, LaunchDecision::Kernel),        // 40k > 22.3k
            (100, 64, LaunchDecision::Inline),       // 40k < 21931+25600=47.5k
            (200, 64, LaunchDecision::Kernel),       // 80k > 47.5k
        ] {
            let mut p = policy_with(400, 400, 0);
            let got = p.decide(&request(items, ctas, 0));
            // Recompute the exact expectation to keep the test precise.
            let t_child = 1721 + 20210 + (ctas as u64) * 400;
            let t_parent = items as u64 * 400;
            let exact = if t_child <= t_parent {
                LaunchDecision::Kernel
            } else {
                LaunchDecision::Inline
            };
            assert_eq!(got, exact, "items={items} ctas={ctas}");
            // And the table's human-readable expectation must agree.
            assert_eq!(got, expect, "items={items} ctas={ctas}");
        }
    }

    #[test]
    fn matrix_backlog_raises_the_bar() {
        // Same workload, growing backlog: decision flips to inline.
        let items = 120;
        for (backlog, expect) in [
            (0u64, LaunchDecision::Kernel),   // t_child = 22.3k vs 48k
            (50, LaunchDecision::Kernel),     // +50*400 = 42.3k vs 48k
            (100, LaunchDecision::Inline),    // +100*400 = 62.3k vs 48k
            (10_000, LaunchDecision::Inline), // queue dominates
        ] {
            let mut p = policy_with(400, 400, backlog);
            assert_eq!(p.decide(&request(items, 1, 0)), expect, "backlog={backlog}");
        }
    }

    #[test]
    fn matrix_prior_launches_raise_overhead() {
        // items*t_warp = 14k; overhead alone decides.
        let items = 35; // t_parent = 14k
        {
            // prior=0: 21931 > 14k, inline anyway.
            let mut p = policy_with(400, 400, 0);
            assert_eq!(p.decide(&request(items, 1, 0)), LaunchDecision::Inline);
        }
        // A big workload launches at prior=0 but not at prior=30
        // (overhead 1721*31+20210 = 73561 > t_parent = 24k... recompute):
        let items = 60; // t_parent = 24k
        let mut p = policy_with(400, 400, 0);
        assert_eq!(p.decide(&request(items, 1, 0)), LaunchDecision::Kernel);
        let mut p = policy_with(400, 400, 0);
        assert_eq!(p.decide(&request(items, 1, 30)), LaunchDecision::Inline);
    }

    #[test]
    fn accounting_follows_decisions() {
        let mut p = policy_with(400, 400, 0);
        let before = p.ccqs().in_system();
        p.decide(&request(1_000, 8, 0)); // launch
        assert_eq!(p.ccqs().in_system(), before + 8);
        p.decide(&request(1, 1, 0)); // inline
        assert_eq!(p.ccqs().in_system(), before + 8);
        let stats = p.stats();
        assert_eq!(stats.modeled_launches, 1);
        assert_eq!(stats.inlined, 1);
        assert_eq!(stats.bootstrap_launches, 0, "metrics were warm");
    }
}

#[cfg(test)]
mod hybrid_tests {
    use super::*;
    use dynapar_engine::Cycle;
    use dynapar_gpu::KernelId;

    #[test]
    fn hybrid_routes_launches_through_aggregation() {
        let mut p = SpawnPolicy::new(LaunchOverheadModel::default(), 4, 1000)
            .with_aggregated_launches();
        assert_eq!(p.name(), "SPAWN+DTBL");
        // Bootstrap decision must come back as Aggregated, not Kernel.
        let req = ChildRequest {
            now: Cycle(0),
            parent_kernel: KernelId(0),
            depth: 1,
            items: 500,
            child_ctas: 2,
            child_threads: 128,
            child_warps_per_cta: 2,
            warp_prior_launches: 0,
            default_threshold: 8,
            pending_kernels: 0,
        };
        assert_eq!(p.decide(&req), LaunchDecision::Aggregated);
        assert_eq!(p.ccqs().in_system(), 2, "CCQS still accounts the CTAs");
    }
}
